"""The transport-agnostic scheduler service core.

The paper's JobTracker is, at heart, a request/response service: each
TaskTracker heartbeat carries a slot snapshot and the reply carries task
assignments (Eqs. 3-8 run per heartbeat; the pheromone/fairness state
re-optimizes per control interval).  This module extracts that decision
core behind a narrow, plain-data surface so the same policy object can be
driven by two very different hosts without drifting apart:

* the discrete-event simulation (:class:`~repro.hadoop.jobtracker.JobTracker`
  delegates every decision here, proven bit-identical on the golden
  digest corpus), and
* the :mod:`repro.serve` asyncio daemon, which feeds it heartbeats parsed
  off newline-delimited JSON sockets.

:class:`SchedulerCore` is the protocol; :class:`LocalSchedulerCore` is the
in-process implementation wrapping a bound
:class:`~repro.schedulers.base.Scheduler`.  The request/response types are
frozen dataclasses holding nothing but plain data — no event heap, no
``Simulator``, no tracker objects — and every type round-trips through
``to_wire``/``from_wire`` JSON-safe dicts.

Import discipline
-----------------
``repro.hadoop.jobtracker`` imports this module, and ``repro.core``'s
package init imports :mod:`repro.core.scheduler`, which imports
``repro.hadoop`` — so this module must not import ``repro.hadoop`` (or
anything that does) at module scope, or either import order would hit a
half-initialized module.  The few hadoop types needed at runtime
(``TrackerStatus``, ``TaskKind``) are imported lazily inside functions;
after interpreter warm-up those are dictionary hits.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from ..observability.metrics import Counter, MetricsRegistry
from ..observability.profiler import NULL_PROFILER, SAMPLE_STRIDE

if TYPE_CHECKING:  # pragma: no cover
    from ..hadoop.job import Job, Task, TaskReport
    from ..hadoop.tasktracker import TrackerStatus
    from ..schedulers.base import Scheduler

__all__ = [
    "WireError",
    "TrackerInfo",
    "HeartbeatRequest",
    "TaskDirective",
    "AssignmentResponse",
    "SchedulerCore",
    "LocalSchedulerCore",
    "task_report_to_wire",
    "report_fields_from_wire",
]

#: Tap callback receiving one wire-shaped dict per core interaction
#: (``register`` / ``submit`` / ``heartbeat`` / ``report`` / ``tick``) —
#: the session-recording hook behind the DES-vs-daemon parity tests.
CoreTap = Callable[[Dict[str, Any]], None]


class WireError(ValueError):
    """A wire message failed validation (missing field, wrong type/range)."""


def _require(mapping: Dict[str, Any], key: str, kind: type) -> Any:
    try:
        value = mapping[key]
    except KeyError:
        raise WireError(f"missing field {key!r}") from None
    # bool is an int subclass; a JSON ``true`` is never a valid count.
    if kind is int and isinstance(value, bool):
        raise WireError(f"field {key!r} must be {kind.__name__}, got bool")
    if kind is float and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if not isinstance(value, kind):
        raise WireError(
            f"field {key!r} must be {kind.__name__}, got {type(value).__name__}"
        )
    return value


def _require_count(mapping: Dict[str, Any], key: str) -> int:
    value = _require(mapping, key, int)
    if value < 0:
        raise WireError(f"field {key!r} must be non-negative, got {value}")
    return value


@dataclass(frozen=True)
class TrackerInfo:
    """Static registration record of one TaskTracker.

    The ``model`` string keys the per-model assignment/completion
    counters (the heterogeneity axis of the paper's Tables III-IV);
    ``hostname`` only decorates error messages.
    """

    machine_id: int
    hostname: str
    model: str
    map_slots: int
    reduce_slots: int

    def to_wire(self) -> Dict[str, Any]:
        return {
            "machine_id": self.machine_id,
            "hostname": self.hostname,
            "model": self.model,
            "map_slots": self.map_slots,
            "reduce_slots": self.reduce_slots,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "TrackerInfo":
        return cls(
            machine_id=_require_count(data, "machine_id"),
            hostname=_require(data, "hostname", str),
            model=_require(data, "model", str),
            map_slots=_require_count(data, "map_slots"),
            reduce_slots=_require_count(data, "reduce_slots"),
        )


@dataclass(frozen=True)
class HeartbeatRequest:
    """One TaskTracker heartbeat: a slot snapshot at a point in time."""

    machine_id: int
    now: float
    free_map_slots: int
    free_reduce_slots: int
    running_maps: int
    running_reduces: int

    def to_wire(self) -> Dict[str, Any]:
        return {
            "machine_id": self.machine_id,
            "now": self.now,
            "free_map_slots": self.free_map_slots,
            "free_reduce_slots": self.free_reduce_slots,
            "running_maps": self.running_maps,
            "running_reduces": self.running_reduces,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "HeartbeatRequest":
        return cls(
            machine_id=_require_count(data, "machine_id"),
            now=_require(data, "now", float),
            free_map_slots=_require_count(data, "free_map_slots"),
            free_reduce_slots=_require_count(data, "free_reduce_slots"),
            running_maps=_require_count(data, "running_maps"),
            running_reduces=_require_count(data, "running_reduces"),
        )


@dataclass(frozen=True)
class TaskDirective:
    """One task assignment in a heartbeat response.

    Carries everything a remote TaskTracker needs to launch the work:
    the stable task id, its job, the kind (``"map"`` / ``"reduce"``),
    and the input volume in MB.
    """

    task_id: str
    job_id: int
    kind: str
    input_mb: float

    def to_wire(self) -> Dict[str, Any]:
        return {
            "task_id": self.task_id,
            "job_id": self.job_id,
            "kind": self.kind,
            "input_mb": self.input_mb,
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "TaskDirective":
        kind = _require(data, "kind", str)
        if kind not in ("map", "reduce"):
            raise WireError(f"field 'kind' must be 'map' or 'reduce', got {kind!r}")
        return cls(
            task_id=_require(data, "task_id", str),
            job_id=_require_count(data, "job_id"),
            kind=kind,
            input_mb=_require(data, "input_mb", float),
        )


@dataclass(frozen=True)
class AssignmentResponse:
    """The reply to one heartbeat: zero or more task directives."""

    machine_id: int
    now: float
    directives: Tuple[TaskDirective, ...] = ()

    def to_wire(self) -> Dict[str, Any]:
        return {
            "machine_id": self.machine_id,
            "now": self.now,
            "directives": [d.to_wire() for d in self.directives],
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "AssignmentResponse":
        raw = _require(data, "directives", list)
        return cls(
            machine_id=_require_count(data, "machine_id"),
            now=_require(data, "now", float),
            directives=tuple(TaskDirective.from_wire(d) for d in raw),
        )


@runtime_checkable
class SchedulerCore(Protocol):
    """The transport-agnostic scheduling surface.

    Implementations hold whatever policy state they like, but the
    interface is plain data end to end: hosts (the DES JobTracker, the
    asyncio daemon, tests) translate their native events into these four
    calls and nothing else.
    """

    def register_tracker(self, info: TrackerInfo) -> None:
        """Announce a TaskTracker (idempotent; re-registration updates)."""

    def heartbeat(self, request: HeartbeatRequest) -> AssignmentResponse:
        """Answer one heartbeat with task directives (Eqs. 3-8)."""

    def task_report(self, report: "TaskReport") -> None:
        """Feed one completed attempt back (the Eq. 2 energy feedback)."""

    def advance_time(self, now: float) -> None:
        """Fire any control-interval ticks due at or before ``now``."""


def task_report_to_wire(report: "TaskReport") -> Dict[str, Any]:
    """Flatten a :class:`~repro.hadoop.job.TaskReport` to a JSON-safe dict.

    Only the per-attempt outcome travels; job-identity fields
    (name/pool/signature) are recovered from the admitted job on the
    receiving side, so the wire record cannot contradict the job it
    reports against.
    """
    return {
        "task_id": report.task_id,
        "attempt_id": report.attempt_id,
        "kind": report.kind.value,
        "machine_id": report.machine_id,
        "start_time": report.start_time,
        "finish_time": report.finish_time,
        "avg_utilization": report.avg_utilization,
        "local": report.local,
        "samples": [[s.utilization, s.duration] for s in report.samples],
        "phases": dict(report.phases),
    }


def report_fields_from_wire(data: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a wire task report into plain attempt-outcome fields.

    Returns the fields a host needs to finish the matching attempt
    (``samples`` already as :class:`~repro.energy.model.UtilizationSample`).
    """
    from ..energy.model import UtilizationSample

    raw_samples = _require(data, "samples", list)
    samples = []
    for entry in raw_samples:
        if not isinstance(entry, (list, tuple)) or len(entry) != 2:
            raise WireError("each sample must be a [utilization, duration] pair")
        samples.append(UtilizationSample(float(entry[0]), float(entry[1])))
    phases = _require(data, "phases", dict)
    local = _require(data, "local", bool)
    return {
        "task_id": _require(data, "task_id", str),
        "attempt_id": _require(data, "attempt_id", str),
        "machine_id": _require_count(data, "machine_id"),
        "start_time": _require(data, "start_time", float),
        "finish_time": _require(data, "finish_time", float),
        "avg_utilization": _require(data, "avg_utilization", float),
        "local": local,
        "samples": samples,
        "phases": {str(k): float(v) for k, v in phases.items()},
    }


class LocalSchedulerCore:
    """In-process :class:`SchedulerCore` wrapping a bound scheduler.

    Owns exactly the state that is *about deciding*: the per-model
    assignment/completion counters, the stride-sampled ``select_tasks``
    instrumentation, the control-interval deadline accumulator, and the
    registry of announced trackers.  Everything host-specific — sim
    clocks, heartbeat gap histograms, tracker expiry, trace emission —
    stays with the host.

    Two entry styles into the same decision path:

    * :meth:`select` — the embedding API the DES JobTracker uses: takes a
      live :class:`~repro.hadoop.tasktracker.TrackerStatus`, returns live
      :class:`~repro.hadoop.job.Task` objects.  No request/response
      objects are constructed, keeping the ~400k-heartbeat hot path
      allocation-free.
    * :meth:`heartbeat` — the protocol API wire hosts use: plain-data in,
      plain-data out, with assigned tasks parked in a live-task index so
      later wire reports can be resolved back to objects.
    """

    def __init__(
        self,
        scheduler: "Scheduler",
        *,
        control_interval: float,
        registry: Optional[MetricsRegistry] = None,
        start_time: float = 0.0,
    ) -> None:
        if control_interval <= 0:
            raise ValueError("control interval must be positive")
        self.scheduler = scheduler
        self.control_interval = control_interval
        self.registry = registry
        self.trackers: Dict[int, TrackerInfo] = {}
        #: index of the last fired control interval (0 before the first)
        self.interval_index = 0
        self._next_deadline = start_time + control_interval
        #: live tasks assigned through :meth:`heartbeat`, keyed by task id,
        #: so wire hosts can resolve reports back to task objects; entries
        #: are dropped when the task's report arrives.
        self._live: Dict[str, "Task"] = {}
        # Telemetry/profiling hooks (see attach_telemetry); the defaults
        # keep the select hot path at one attribute check each.
        self.telemetry = None
        self.profiler = NULL_PROFILER
        #: countdown to the next stride-sampled ``select_tasks`` timing
        #: (see ``repro.observability.profiler.SAMPLE_STRIDE``)
        self._select_tick = 0
        self._assignment_counters: Dict[tuple, Counter] = {}
        self._completion_counters: Dict[tuple, Counter] = {}
        #: map/reduce counts of the most recent :meth:`select` batch, so
        #: hosts can trace them without recounting (no tuple allocation
        #: on the hot path).
        self.last_maps = 0
        self.last_reduces = 0
        # Running totals (cheap int bumps; the serve stats surface).
        self.heartbeats_handled = 0
        self.tasks_assigned = 0
        self.reports_handled = 0
        self._tap: Optional[CoreTap] = None

    # ---------------------------------------------------------------- wiring
    def set_tap(self, tap: Optional[CoreTap]) -> None:
        """Install (or clear) the session-recording tap.

        With a tap installed every core interaction is also emitted as a
        wire-shaped dict — the recording side of the record/replay parity
        harness.  ``None`` restores the zero-cost path.
        """
        self._tap = tap

    def attach_telemetry(self, sink=None, profiler=None) -> None:
        """Attach a telemetry sink and/or phase profiler to the select path."""
        if sink is not None:
            self.telemetry = sink
        if profiler is not None:
            self.profiler = profiler

    # ------------------------------------------------------------- lifecycle
    def register_tracker(self, info: TrackerInfo) -> None:
        self.trackers[info.machine_id] = info
        if self._tap is not None:
            self._tap({"type": "register", **info.to_wire()})

    def job_added(self, job: "Job") -> None:
        """Relay a host's job admission to the scheduler (and the tap)."""
        if self._tap is not None:
            self._tap({"type": "submit", "job": job_to_wire(job)})
        self.scheduler.on_job_added(job)

    def job_removed(self, job: "Job") -> None:
        self.scheduler.on_job_removed(job)

    # -------------------------------------------------------------- decisions
    def select(self, status: "TrackerStatus", now: float) -> List["Task"]:
        """Run one assignment decision against a live tracker snapshot.

        This is the exact decision path formerly inlined in
        ``JobTracker.heartbeat``: stride-sampled ``select_tasks`` timing,
        the Eq. 1 slot-constraint audit, and per-model assignment
        counters.  ``now`` only feeds instrumentation — the scheduler
        reads its own clock through its binding.
        """
        self.heartbeats_handled += 1
        profiler = self.profiler
        sink = self.telemetry
        if profiler.enabled or sink is not None:
            # Stride-sampled timing: the two clock reads are the dominant
            # instrumentation cost at ~400k heartbeats per fleet-scale run,
            # so only every SAMPLE_STRIDE-th select is timed, charged at
            # stride weight (an unbiased estimate of the phase total).
            # Batch sizes need no clock and are observed every heartbeat.
            tick = self._select_tick - 1
            if tick < 0:
                self._select_tick = SAMPLE_STRIDE - 1
                started = perf_counter()
                assignments = self.scheduler.select_tasks(status)
                elapsed = perf_counter() - started
                if profiler.enabled:
                    profiler.add("select", elapsed * SAMPLE_STRIDE)
                if sink is not None:
                    sink.observe_heartbeat(elapsed, len(assignments))
            else:
                self._select_tick = tick
                assignments = self.scheduler.select_tasks(status)
                if sink is not None:
                    sink.observe_batch(len(assignments))
        else:
            assignments = self.scheduler.select_tasks(status)
        maps = reduces = 0
        if assignments:  # empty heartbeats (the common case at scale) skip the audit
            maps = sum(1 for t in assignments if t.is_map)
            reduces = len(assignments) - maps
            if maps > status.free_map_slots or reduces > status.free_reduce_slots:
                info = self.trackers.get(status.machine_id)
                hostname = info.hostname if info is not None else f"machine-{status.machine_id}"
                raise RuntimeError(
                    f"scheduler over-assigned {hostname}: "
                    f"{maps} maps into {status.free_map_slots} slots, "
                    f"{reduces} reduces into {status.free_reduce_slots}"
                )
            self.tasks_assigned += len(assignments)
        self.last_maps = maps
        self.last_reduces = reduces
        if self.registry is not None and assignments:
            info = self.trackers.get(status.machine_id)
            model = info.model if info is not None else "unknown"
            for task in assignments:
                key = (model, task.kind.value)
                counter = self._assignment_counters.get(key)
                if counter is None:
                    counter = self.registry.counter(
                        "assignments_total",
                        scheduler=self.scheduler.name,
                        model=model,
                        kind=task.kind.value,
                    )
                    self._assignment_counters[key] = counter
                counter.inc()
        if self._tap is not None:
            self._tap(
                {
                    "type": "heartbeat",
                    "request": {
                        "machine_id": status.machine_id,
                        "now": now,
                        "free_map_slots": status.free_map_slots,
                        "free_reduce_slots": status.free_reduce_slots,
                        "running_maps": status.running_maps,
                        "running_reduces": status.running_reduces,
                    },
                    "directives": [
                        {
                            "task_id": t.task_id,
                            "job_id": t.job.job_id,
                            "kind": t.kind.value,
                            "input_mb": t.input_mb,
                        }
                        for t in assignments
                    ],
                }
            )
        return assignments

    def heartbeat(self, request: HeartbeatRequest) -> AssignmentResponse:
        """Protocol entry: plain-data heartbeat in, plain-data response out."""
        from ..hadoop.tasktracker import TrackerStatus

        status = TrackerStatus(
            machine_id=request.machine_id,
            free_map_slots=request.free_map_slots,
            free_reduce_slots=request.free_reduce_slots,
            running_maps=request.running_maps,
            running_reduces=request.running_reduces,
        )
        tasks = self.select(status, request.now)
        live = self._live
        directives = []
        for task in tasks:
            live[task.task_id] = task
            directives.append(
                TaskDirective(
                    task_id=task.task_id,
                    job_id=task.job.job_id,
                    kind=task.kind.value,
                    input_mb=task.input_mb,
                )
            )
        return AssignmentResponse(
            machine_id=request.machine_id, now=request.now, directives=tuple(directives)
        )

    def resolve(self, task_id: str) -> "Task":
        """Look up a live task previously assigned through :meth:`heartbeat`."""
        try:
            return self._live[task_id]
        except KeyError:
            raise KeyError(f"no live task {task_id!r} (never assigned, or already reported)") from None

    # ------------------------------------------------------------ completions
    def task_report(self, report: "TaskReport") -> None:
        """Count the completion and feed it to the scheduler's analyzer."""
        self.reports_handled += 1
        self._live.pop(report.task_id, None)
        if self.registry is not None:
            info = self.trackers.get(report.machine_id)
            model = info.model if info is not None else "unknown"
            key = (model, report.kind.value)
            counter = self._completion_counters.get(key)
            if counter is None:
                counter = self.registry.counter(
                    "tasks_completed_total", model=key[0], kind=key[1]
                )
                self._completion_counters[key] = counter
            counter.inc()
        if self._tap is not None:
            self._tap({"type": "report", **task_report_to_wire(report)})
        self.scheduler.on_task_completed(report)

    # ------------------------------------------------------------------ clock
    def advance_time(
        self, now: float, on_interval: Optional[Callable[[int], None]] = None
    ) -> None:
        """Fire every control-interval tick due at or before ``now``.

        The deadline accumulates by repeated addition — exactly how the
        DES control loop's ``timeout`` chain accumulates — so a DES host
        calling this once per loop iteration fires on bit-identical
        floats.  A wall-clock host that slept long fires all missed ticks
        in order.  ``on_interval`` (if given) runs before each scheduler
        tick with the 1-based interval index — the DES host's trace hook.
        """
        while self._next_deadline <= now:
            self.interval_index += 1
            if on_interval is not None:
                on_interval(self.interval_index)
            self._next_deadline += self.control_interval
            if self._tap is not None:
                self._tap({"type": "tick", "now": now, "index": self.interval_index})
            self.scheduler.on_control_interval(now)


def job_to_wire(job: "Job") -> Dict[str, Any]:
    """Serialize an admitted job completely enough to rebuild it elsewhere.

    Embeds the full :class:`~repro.workloads.profiles.WorkloadProfile`
    (plain floats) rather than its name, so replay does not depend on a
    profile registry; per-map input sizes and replica placements travel
    explicitly because the submitting host already drew its skew/HDFS
    randomness.
    """
    spec = job.spec
    profile = spec.profile
    return {
        "job_id": job.job_id,
        "name": spec.name,
        "pool": spec.pool,
        "size_class": spec.size_class,
        "submit_time": spec.submit_time,
        "input_mb": spec.input_mb,
        "num_reduces": spec.num_reduces,
        "profile": {
            "name": profile.name,
            "map_cpu_seconds": profile.map_cpu_seconds,
            "map_io_seconds": profile.map_io_seconds,
            "map_output_ratio": profile.map_output_ratio,
            "reduce_cpu_per_mb": profile.reduce_cpu_per_mb,
            "reduce_io_per_mb": profile.reduce_io_per_mb,
            "map_cores": profile.map_cores,
            "reduce_cores": profile.reduce_cores,
        },
        "map_input_sizes": [task.input_mb for task in job.maps],
        "replica_hosts": [list(task.preferred_hosts) for task in job.maps],
    }
