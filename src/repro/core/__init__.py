"""E-Ant — the paper's primary contribution.

* :class:`EAntScheduler` / :class:`EAntConfig` — the adaptive task assigner.
* :class:`PheromoneTable`, :class:`TaskFeedback`, :class:`ExchangeLevel` —
  Eqs. 4-6 with machine/job-level exchange.
* :class:`TaskAnalyzer` — Eq. 2 energy feedback from TaskTracker reports.
* :func:`fairness_eta`, :class:`FairnessView` — the Eq. 7 heuristic.
* :class:`ConvergenceDetector` — Section VI-C stability detection.
* :class:`AcoSolver`, :class:`AssignmentProblem` — the Table II
  construction-graph formulation (batch solver + overhead measurements).
"""

from .aco import AcoSolution, AcoSolver, AssignmentProblem, brute_force_best
from .analyzer import TaskAnalyzer
from .convergence import ConvergenceDetector, distribution_overlap
from .heuristics import FairnessView, fairness_eta
from .pheromone import ExchangeLevel, PheromoneTable, TaskFeedback
from .scheduler import EAntConfig, EAntScheduler
from .service import (
    AssignmentResponse,
    HeartbeatRequest,
    LocalSchedulerCore,
    SchedulerCore,
    TaskDirective,
    TrackerInfo,
    WireError,
)

__all__ = [
    "EAntScheduler",
    "EAntConfig",
    "SchedulerCore",
    "LocalSchedulerCore",
    "TrackerInfo",
    "HeartbeatRequest",
    "TaskDirective",
    "AssignmentResponse",
    "WireError",
    "PheromoneTable",
    "TaskFeedback",
    "ExchangeLevel",
    "TaskAnalyzer",
    "FairnessView",
    "fairness_eta",
    "ConvergenceDetector",
    "distribution_overlap",
    "AcoSolver",
    "AcoSolution",
    "AssignmentProblem",
    "brute_force_best",
]
