"""The heuristic function of Eq. 7: data locality and job fairness.

The heuristic multiplies into the assignment probability (Eq. 8) as
``eta^beta``.  Its two cases:

* a node-local pending task -> ``eta = infinity``, i.e. local tasks always
  win the slot (the scheduler short-circuits rather than multiplying by
  infinity);
* otherwise ``eta`` measures the job's *unfairness*: below its min-share
  the value exceeds 1 (boosting the starved job), above it the value drops
  below 1 (throttling the hog).
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["fairness_eta", "FairnessView"]


def fairness_eta(min_share: float, occupied: float, pool_slots: float) -> float:
    """Eq. 7's second branch: 1 / (1 - (S_min - S_occ) / S_pool).

    Parameters
    ----------
    min_share:
        ``S_min`` — the job's minimum slot share.
    occupied:
        ``S_occ`` — slots the job currently holds.
    pool_slots:
        ``S_pool`` — the pool's total slots (single-user system: the whole
        cluster, and ``sum_j S_min_j = S_pool``).

    Notes
    -----
    ``S_occ = S_min`` gives exactly 1 (fair share reached, no influence).
    ``S_occ < S_min`` gives > 1, growing with the deficit.  The expression
    is clamped to stay positive if a job ever holds nearly the whole pool
    (the raw formula would blow up at ``S_occ - S_min = S_pool``).
    """
    if pool_slots <= 0:
        raise ValueError("pool must have slots")
    if min_share < 0 or occupied < 0:
        raise ValueError("shares must be non-negative")
    denominator = 1.0 - (min_share - occupied) / pool_slots
    # occupied >= 0 and min_share <= pool imply denominator > 0 in normal
    # operation; guard against degenerate configurations anyway.
    denominator = max(denominator, 1e-3)
    return 1.0 / denominator


class FairnessView(NamedTuple):
    """Per-interval snapshot used to evaluate Eq. 7 for every job.

    Single-user system (Section IV-C.4): every active job's min-share is an
    equal split of the pool.  A NamedTuple because one is built per
    heartbeat — cheap construction matters at large fleets.
    """

    pool_slots: int
    active_jobs: int

    @property
    def min_share(self) -> float:
        """``S_min`` of each job under equal splitting."""
        if self.active_jobs <= 0:
            return float(self.pool_slots)
        return self.pool_slots / self.active_jobs

    def eta(self, occupied_slots: int) -> float:
        """Eq. 7 fairness term for a job holding ``occupied_slots``."""
        return fairness_eta(self.min_share, occupied_slots, self.pool_slots)
