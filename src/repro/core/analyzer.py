"""The task analyzer: Eq. 2 energy estimates from TaskTracker reports.

The analyzer owns one :class:`~repro.energy.model.TaskEnergyModel` per
machine and converts each :class:`~repro.hadoop.job.TaskReport`'s noisy
CPU-utilization samples into the task's estimated energy — the feedback
signal the adaptive task assigner optimizes on.  It buffers one control
interval's worth of estimates and drains them as
:class:`~repro.core.pheromone.TaskFeedback` items at each tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..cluster import Cluster
from ..energy.model import TaskEnergyModel
from ..hadoop.job import TaskReport
from .pheromone import TaskFeedback

__all__ = ["TaskAnalyzer"]


@dataclass
class TaskAnalyzer:
    """Per-machine energy models plus the interval feedback buffer.

    Parameters
    ----------
    cluster:
        Source of machine specs (one model per machine instance).
    models:
        Optional explicit models per machine id; by default each machine's
        model is instantiated from its spec's power law — i.e. assuming a
        prior system-identification pass recovered the parameters exactly.
        Pass models fitted by :func:`repro.energy.estimation.fit_power_model`
        to study identification error.
    """

    cluster: Cluster
    models: Optional[Dict[int, TaskEnergyModel]] = None
    _buffer: List[TaskFeedback] = field(default_factory=list)
    #: every (report, estimate) this analyzer ever produced (diagnostics)
    history: List[Tuple[TaskReport, float]] = field(default_factory=list)
    keep_history: bool = False

    def __post_init__(self) -> None:
        if self.models is None:
            self.models = {
                machine.machine_id: TaskEnergyModel.for_spec(machine.spec)
                for machine in self.cluster
            }

    def add_machine(self, machine) -> None:
        """Instantiate an energy model for a machine that joined mid-run."""
        assert self.models is not None
        self.models.setdefault(
            machine.machine_id, TaskEnergyModel.for_spec(machine.spec)
        )

    # ------------------------------------------------------------- estimates
    def estimate(self, report: TaskReport) -> float:
        """Eq. 2 energy estimate (J) for one completed task."""
        model = self.models[report.machine_id]
        if report.samples:
            return model.estimate(report.samples)
        return model.estimate_from_average(report.avg_utilization, report.duration)

    def colony_key(self, report: TaskReport) -> Hashable:
        """The ant colony a task belongs to: its job and task kind."""
        return (report.job_id, report.kind)

    def job_group_key(self, report: TaskReport) -> Hashable:
        """Demand-similarity key for job-level exchange (Section IV-D)."""
        return (report.resource_signature, report.kind)

    # ---------------------------------------------------------------- buffer
    def observe(self, report: TaskReport) -> float:
        """Ingest one completion report; returns its energy estimate."""
        energy = self.estimate(report)
        feedback = TaskFeedback(
            colony=self.colony_key(report),
            machine_id=report.machine_id,
            energy_joules=energy,
            job_group=self.job_group_key(report),
        )
        self._buffer.append(feedback)
        if self.keep_history:
            self.history.append((report, energy))
        return energy

    def drain(self) -> List[TaskFeedback]:
        """Return and clear the current interval's feedback."""
        drained, self._buffer = self._buffer, []
        return drained

    @property
    def pending_count(self) -> int:
        """Feedback items accumulated since the last drain."""
        return len(self._buffer)
