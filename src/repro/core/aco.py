"""Classic ACO over the construction graph of Table II.

The online scheduler (:mod:`repro.core.scheduler`) applies ACO *adaptively*
— one pheromone update per control interval from real energy feedback.
This module implements the underlying combinatorial picture the paper
formulates in Section IV-A: a construction graph whose rows are machines
and whose columns are tasks (Table II), an ant being one complete
assignment of every task to a machine subject to per-machine slot limits,
and the objective of Eq. 1 — minimize total assignment energy.

:class:`AcoSolver` is used for (i) validating the formulation against
exhaustive search on small instances, and (ii) the Section VI-D overhead
measurement (the paper reports ~120 ms per solve).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["AssignmentProblem", "AcoSolution", "AcoSolver"]


@dataclass(frozen=True)
class AssignmentProblem:
    """One instance of the Eq. 1 task-assignment problem.

    Parameters
    ----------
    energy:
        ``energy[m][n]`` — Joules for task ``n`` on machine ``m``
        (the ``E(T_n^j(m))`` cells of Table II).
    slots:
        Free slots per machine (the Eq. 1 capacity constraint).
    """

    energy: Tuple[Tuple[float, ...], ...]
    slots: Tuple[int, ...]

    @classmethod
    def from_matrix(cls, energy: Sequence[Sequence[float]], slots: Sequence[int]) -> "AssignmentProblem":
        matrix = tuple(tuple(float(x) for x in row) for row in energy)
        if not matrix or not matrix[0]:
            raise ValueError("energy matrix must be non-empty")
        widths = {len(row) for row in matrix}
        if len(widths) != 1:
            raise ValueError("energy matrix rows must have equal length")
        if any(x <= 0 for row in matrix for x in row):
            raise ValueError("energies must be positive")
        slot_tuple = tuple(int(s) for s in slots)
        if len(slot_tuple) != len(matrix):
            raise ValueError("one slot count per machine required")
        if any(s < 0 for s in slot_tuple):
            raise ValueError("slot counts must be non-negative")
        if sum(slot_tuple) < len(matrix[0]):
            raise ValueError("not enough slots for all tasks")
        return cls(energy=matrix, slots=slot_tuple)

    @property
    def num_machines(self) -> int:
        return len(self.energy)

    @property
    def num_tasks(self) -> int:
        return len(self.energy[0])

    def cost(self, assignment: Sequence[int]) -> float:
        """Total energy of a machine-per-task assignment vector."""
        if len(assignment) != self.num_tasks:
            raise ValueError("assignment length must equal task count")
        return sum(self.energy[m][n] for n, m in enumerate(assignment))

    def is_feasible(self, assignment: Sequence[int]) -> bool:
        """Does the assignment respect every machine's slot limit?"""
        counts = [0] * self.num_machines
        for machine in assignment:
            counts[machine] += 1
        return all(counts[m] <= self.slots[m] for m in range(self.num_machines))


@dataclass(frozen=True)
class AcoSolution:
    """Result of one :meth:`AcoSolver.solve` call."""

    assignment: Tuple[int, ...]
    cost: float
    iterations: int
    #: best cost found at the end of each iteration (for convergence plots)
    cost_trace: Tuple[float, ...]


@dataclass
class AcoSolver:
    """MAX-MIN-style ant system over the construction graph.

    Each iteration, ``n_ants`` ants build full assignments column by
    column: for each task the ant samples a machine with probability
    proportional to ``tau^a * (1/E)^b`` among machines with free slots.
    The iteration-best ant deposits pheromone inversely proportional to
    its cost; pheromone evaporates by ``rho`` and is clamped.
    """

    n_ants: int = 16
    n_iterations: int = 40
    rho: float = 0.5
    alpha: float = 1.0
    beta: float = 2.0
    tau_min: float = 0.05
    tau_max: float = 50.0
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_ants < 1 or self.n_iterations < 1:
            raise ValueError("need at least one ant and one iteration")
        if not 0.0 < self.rho <= 1.0:
            raise ValueError("rho must be in (0, 1]")
        self._rng = np.random.default_rng(self.seed)

    def solve(self, problem: AssignmentProblem) -> AcoSolution:
        """Minimize Eq. 1 for ``problem``; returns the best tour found."""
        energy = np.asarray(problem.energy, dtype=float)
        heuristic = (1.0 / energy) ** self.beta
        tau = np.full_like(energy, 1.0)
        best_assignment: Optional[np.ndarray] = None
        best_cost = float("inf")
        trace: List[float] = []

        task_range = np.arange(problem.num_tasks)
        for _iteration in range(self.n_iterations):
            # tau only changes between iterations, so the tau^a * eta^b
            # desirability matrix is shared by the whole cohort of ants
            # instead of re-exponentiated column by column per ant.
            desirability = (tau**self.alpha) * heuristic
            iter_best: Optional[np.ndarray] = None
            iter_cost = float("inf")
            for _ant in range(self.n_ants):
                assignment, cost = self._construct(problem, energy, desirability)
                if cost < iter_cost:
                    iter_best, iter_cost = assignment, cost
            if iter_cost < best_cost:
                best_assignment, best_cost = iter_best, iter_cost
            # Evaporate, then let the iteration-best ant deposit.  The
            # (machine, task) pairs are unique — one machine per task — so
            # the fancy-indexed add touches each cell at most once.
            tau *= 1.0 - self.rho
            assert iter_best is not None
            deposit = self.rho * (np.mean(energy) * problem.num_tasks / iter_cost)
            tau[iter_best, task_range] += deposit
            np.clip(tau, self.tau_min, self.tau_max, out=tau)
            trace.append(best_cost)

        assert best_assignment is not None
        return AcoSolution(
            assignment=tuple(int(m) for m in best_assignment),
            cost=best_cost,
            iterations=self.n_iterations,
            cost_trace=tuple(trace),
        )

    def _construct(
        self,
        problem: AssignmentProblem,
        energy: np.ndarray,
        desirability: np.ndarray,
    ) -> Tuple[np.ndarray, float]:
        """One ant's tour: visit each column once, respect row capacities.

        ``desirability`` is the iteration's precomputed ``tau^a * eta^b``
        matrix; each task's sampling weights are one masked column read.
        """
        remaining = np.array(problem.slots, dtype=int)
        assignment = np.empty(problem.num_tasks, dtype=int)
        cost = 0.0
        # Visit tasks in random order so capacity pressure is not biased
        # toward low-index tasks.
        order = self._rng.permutation(problem.num_tasks)
        for task in order:
            available = remaining > 0
            weights = np.where(available, desirability[:, task], 0.0)
            total = weights.sum()
            if total <= 0:  # all-available fallback: uniform over open rows
                weights = available.astype(float)
                total = weights.sum()
            probabilities = weights / total
            machine = int(self._rng.choice(problem.num_machines, p=probabilities))
            assignment[task] = machine
            remaining[machine] -= 1
            cost += energy[machine, task]
        return assignment, float(cost)


def brute_force_best(problem: AssignmentProblem) -> Tuple[Tuple[int, ...], float]:
    """Exhaustive optimum for tiny instances (test oracle)."""
    import itertools

    best_cost = float("inf")
    best: Optional[Tuple[int, ...]] = None
    for assignment in itertools.product(range(problem.num_machines), repeat=problem.num_tasks):
        if not problem.is_feasible(assignment):
            continue
        cost = problem.cost(assignment)
        if cost < best_cost:
            best_cost, best = cost, assignment
    if best is None:
        raise ValueError("no feasible assignment exists")
    return best, best_cost
