"""Pheromone bookkeeping (Eqs. 4-6) with exchange strategies (Section IV-D).

Each *colony* — a job's map tasks or reduce tasks — keeps one pheromone
value per machine.  At the end of every control interval the table is
updated from the interval's completed-task energy feedback::

    tau_{t+1}(j, m) = (1 - rho) * tau_t(j, m) + rho * sum_n dtau_n(j, m)   (Eq. 4)

    dtau_n(j, m) = (mean energy of job j's completed tasks) / E(T_n(m))    (Eq. 5)

so machines that complete more tasks with below-average energy accumulate
pheromone fastest.  Cross-job negative feedback (Eq. 6) subtracts the other
colonies' gains on the same machine, making colonies compete for
energy-efficient hosts.

The exchange strategies replace per-machine (and per-job) evidence with
group averages over hardware-identical machines and demand-similar jobs,
damping the estimate noise studied in Figs. 7 and 10.

Storage layout
--------------
Each colony's row is a dense ``float64`` ndarray whose column order is the
``machine_ids`` list order; ``_col`` maps machine id -> column.  Group
profiles use the same layout.  Joins append a column, decommissions delete
one, so the (colony x machine) matrix follows the fleet.  Every vectorized
expression here is elementwise (or an explicitly sequential ``cumsum`` for
the row sum), which keeps results bit-identical to the scalar dict-based
code this replaced — the differential suite holds that proof.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["ExchangeLevel", "TaskFeedback", "PheromoneTable"]

ColonyKey = Hashable  # typically (job_id, TaskKind)


class ExchangeLevel(enum.Flag):
    """Which information-exchange strategies are active (Fig. 10's four)."""

    NONE = 0
    MACHINE = enum.auto()
    JOB = enum.auto()
    BOTH = MACHINE | JOB


@dataclass(frozen=True)
class TaskFeedback:
    """Energy feedback of one completed task, as the analyzer reports it."""

    colony: ColonyKey
    machine_id: int
    energy_joules: float
    #: demand-similarity key for job-level exchange (resource signature + kind)
    job_group: Hashable = None


@dataclass
class PheromoneTable:
    """Per-colony, per-machine pheromone values with Eq. 4-6 updates.

    Parameters
    ----------
    machine_ids:
        All machines in the cluster.
    rho:
        Evaporation coefficient of Eq. 4 (paper example: 0.5).
    initial:
        Starting pheromone of every path (paper example: 1.0).
    tau_min, tau_max:
        Absolute clamps keeping probabilities well-defined under negative
        feedback (standard MAX-MIN ant system practice).
    relative_floor:
        After each update, no machine in a colony's row may fall below
        ``relative_floor * max(row)``.  This bounds how extreme the
        assignment distribution can get, preserving the exploration that
        Section IV-C.2 calls Randomness — without it, repeated
        count-weighted deposits drive winner-take-all lock-in that
        hard-partitions the cluster by job type.
    negative_feedback:
        Weight of the Eq. 6 cross-colony term (1.0 = paper; 0 disables,
        used by the ablation benchmark).
    machine_groups:
        Hardware-identical machine groups (machine-level exchange).
    exchange:
        Which exchange strategies to apply.
    """

    machine_ids: Sequence[int]
    rho: float = 0.5
    initial: float = 1.0
    tau_min: float = 0.05
    tau_max: float = 1e9
    relative_floor: float = 0.05
    negative_feedback: float = 1.0
    machine_groups: Sequence[Sequence[int]] = ()
    exchange: ExchangeLevel = ExchangeLevel.BOTH
    #: colony -> dense pheromone row; columns follow ``machine_ids`` order.
    _tau: Dict[ColonyKey, np.ndarray] = field(default_factory=dict)
    #: machine id -> column index into every row and profile.
    _col: Dict[int, int] = field(default_factory=dict)
    #: colony -> (sum(row), max(row)) memo for the Eq. 3 normalizers.  The
    #: E-Ant scheduler queries attractiveness/relative_quality once per
    #: (pending job x offered slot) per heartbeat, but rows only change at
    #: control-interval updates and fleet churn — so the normalizers are
    #: computed lazily on first query and dropped on any row mutation
    #: (update / add_machine / remove_machine / drop_colony).  The row sum
    #: uses ``cumsum`` — sequential left-to-right like the scalar ``sum``
    #: it replaced — so queries stay bit-identical to recomputing them.
    _row_stats: Dict[ColonyKey, Tuple[float, float]] = field(default_factory=dict)
    _group_of: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    #: colony -> job-similarity group (set via ensure_colony)
    _colony_group: Dict[ColonyKey, Hashable] = field(default_factory=dict)
    #: persistent per-group pheromone profiles new colonies inherit
    #: (dense rows in the same column layout as ``_tau``)
    _group_profiles: Dict[Hashable, np.ndarray] = field(default_factory=dict)
    #: EMA weight folding a depositing colony's row into its group profile
    profile_ema: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 < self.rho <= 1.0:
            raise ValueError("rho must be in (0, 1]")
        if self.tau_min <= 0 or self.tau_max <= self.tau_min:
            raise ValueError("need 0 < tau_min < tau_max")
        if not 0.0 <= self.relative_floor < 1.0:
            raise ValueError("relative_floor must be in [0, 1)")
        if self.negative_feedback < 0:
            raise ValueError("negative feedback weight must be non-negative")
        self.machine_ids = list(self.machine_ids)
        if not self.machine_ids:
            raise ValueError("need at least one machine")
        self._col = {m: i for i, m in enumerate(self.machine_ids)}
        if len(self._col) != len(self.machine_ids):
            raise ValueError("duplicate machine ids")
        for group in self.machine_groups:
            members = tuple(sorted(group))
            for machine_id in members:
                self._group_of[machine_id] = members
        for machine_id in self.machine_ids:
            self._group_of.setdefault(machine_id, (machine_id,))

    # -------------------------------------------------------------- colonies
    def ensure_colony(self, colony: ColonyKey, group: Hashable = None) -> None:
        """Create a colony's row.

        With job-level exchange active and a known ``group`` that has a
        stored profile (built from earlier homogeneous jobs), the new
        colony inherits that profile — this is how short jobs benefit from
        the experiences of similar jobs that ran before them
        (Section IV-D's job-level exchange).  Otherwise the row starts
        uniform at ``initial``.
        """
        if group is not None:
            self._colony_group.setdefault(colony, group)
        if colony in self._tau:
            return
        profile = None
        if group is not None and self.exchange & ExchangeLevel.JOB:
            profile = self._group_profiles.get(group)
        if profile is not None:
            self._tau[colony] = profile.copy()
        else:
            self._tau[colony] = np.full(len(self.machine_ids), self.initial)

    # ------------------------------------------------------- fleet dynamics
    def add_machine(self, machine_id: int, group: Sequence[int]) -> None:
        """Admit a machine that joined the cluster mid-run.

        ``group`` is the full membership of its hardware-identical group
        (including ``machine_id`` itself).  Every live colony row and every
        stored group profile gains a column seeded at the prior
        ``initial`` — the new machine starts with no evidence, exactly like
        every path did at t=0, and earns (or loses) pheromone from its
        first control interval of feedback.
        """
        if machine_id not in self._col:
            self._col[machine_id] = len(self.machine_ids)
            self.machine_ids.append(machine_id)
            for colony, row in self._tau.items():
                self._tau[colony] = np.append(row, self.initial)
            for key, profile in self._group_profiles.items():
                self._group_profiles[key] = np.append(profile, self.initial)
        members = tuple(sorted(set(group) | {machine_id}))
        for member in members:
            self._group_of[member] = members
        self._row_stats.clear()

    def remove_machine(self, machine_id: int) -> None:
        """Prune a departed (decommissioned) machine's paths everywhere.

        Its pheromone simply vanishes: stale tau toward a machine that can
        never host another task would otherwise keep soaking up assignment
        probability and distort each colony's normalization (Eq. 3).
        """
        column = self._col.pop(machine_id, None)
        if column is not None:
            self.machine_ids.remove(machine_id)
            for colony, row in self._tau.items():
                self._tau[colony] = np.delete(row, column)
            for key, profile in self._group_profiles.items():
                self._group_profiles[key] = np.delete(profile, column)
            for m, index in self._col.items():
                if index > column:
                    self._col[m] = index - 1
        members = self._group_of.pop(machine_id, None)
        if members is not None:
            remaining = tuple(m for m in members if m != machine_id)
            for member in remaining:
                self._group_of[member] = remaining
        self._row_stats.clear()

    def drop_colony(self, colony: ColonyKey) -> None:
        """Forget a finished job's colony (its group profile persists)."""
        self._tau.pop(colony, None)
        self._row_stats.pop(colony, None)
        self._colony_group.pop(colony, None)

    @property
    def colonies(self) -> List[ColonyKey]:
        return list(self._tau)

    # --------------------------------------------------------------- queries
    def _stats(self, colony: ColonyKey) -> Tuple[float, float]:
        """``(sum(row), max(row))`` for a colony, memoized between mutations."""
        stats = self._row_stats.get(colony)
        if stats is None:
            row = self._tau[colony]
            # cumsum[-1], not sum(): sequential left-to-right accumulation
            # matches the scalar reference bit-for-bit (ndarray.sum is
            # pairwise).  The method form skips np.cumsum's dispatch wrapper.
            stats = (float(row.cumsum()[-1]), float(row.max()))
            self._row_stats[colony] = stats
        return stats

    def row_mapping(self, colony: ColonyKey) -> Dict[int, float]:
        """The colony's row as a ``{machine_id: tau}`` dict (copy)."""
        return dict(zip(self.machine_ids, self._tau[colony].tolist()))

    def tau(self, colony: ColonyKey, machine_id: int) -> float:
        """Current pheromone of one path."""
        self.ensure_colony(colony)
        return float(self._tau[colony][self._col[machine_id]])

    def attractiveness(self, colony: ColonyKey, machine_id: int) -> float:
        """Eq. 3: tau(j, m) normalized over all machines for the colony."""
        self.ensure_colony(colony)
        return float(self._tau[colony][self._col[machine_id]] / self._stats(colony)[0])

    def attractiveness_many(
        self, colonies: Sequence[ColonyKey], machine_id: int
    ) -> np.ndarray:
        """Eq. 3 for one machine across many colonies in one pass.

        The heartbeat scorer calls this once per slot offer with every
        candidate colony; each element is the same ``tau / sum(row)``
        division :meth:`attractiveness` performs, batched.
        """
        for colony in colonies:
            self.ensure_colony(colony)
        column = self._col[machine_id]
        count = len(colonies)
        taus = np.empty(count)
        totals = np.empty(count)
        rows = self._tau
        for i, colony in enumerate(colonies):
            taus[i] = rows[colony][column]
            totals[i] = self._stats(colony)[0]
        return taus / totals

    def attractiveness_row(self, colony: ColonyKey) -> Dict[int, float]:
        """Eq. 3 for every machine at once."""
        self.ensure_colony(colony)
        normalized = self._tau[colony] / self._stats(colony)[0]
        return dict(zip(self.machine_ids, normalized.tolist()))

    def relative_quality(self, colony: ColonyKey, machine_id: int) -> float:
        """Attractiveness of ``machine_id`` relative to the colony's best.

        1.0 on the colony's best machine; < 1 elsewhere.  This drives the
        gated acceptance in the scheduler: a slot on a poor machine is
        left idle with high probability.
        """
        self.ensure_colony(colony)
        return float(self._tau[colony][self._col[machine_id]] / self._stats(colony)[1])

    # --------------------------------------------------------------- updates
    def update(self, feedback: Iterable[TaskFeedback]) -> Dict[ColonyKey, Dict[int, float]]:
        """Apply one control interval's feedback (Eqs. 4-6 + exchange).

        Returns the per-colony, per-machine deposit sums ``S(j, m)``
        actually applied (before evaporation), for diagnostics.
        """
        items = [f for f in feedback if f.energy_joules > 0]
        deposits = self._compute_deposits(items)

        # Record job-group membership observed in the feedback itself.
        for item in items:
            if item.job_group is not None:
                self._colony_group.setdefault(item.colony, item.job_group)

        self._apply_update(deposits)
        self._fold_into_group_profiles(deposits)
        return deposits

    def _apply_update(self, deposits: Dict[ColonyKey, Dict[int, float]]) -> None:
        """Eqs. 4 and 6 over every live row, one vectorized pass per colony.

        Eq. 6: colonies competing for a machine push each other down.  The
        cross-colony term is the *mean* of the other colonies' deposits, so
        its magnitude stays comparable to one colony's own deposit
        regardless of how many jobs share the cluster.  ``machine_totals``
        accumulates colony-by-colony in deposit insertion order — the same
        addition order as the scalar reference, which float addition's
        non-associativity makes load-bearing.
        """
        width = len(self.machine_ids)
        col = self._col
        depositors = max(len(deposits), 1)
        machine_totals = np.zeros(width)
        own_rows: Dict[ColonyKey, np.ndarray] = {}
        for colony, per_machine in deposits.items():
            own = np.zeros(width)
            for machine_id, value in per_machine.items():
                # Feedback can trail a machine's removal by one control
                # interval; deposits to departed machines never reach a
                # live column (the scalar code accumulated and then never
                # read them).
                column = col.get(machine_id)
                if column is not None:
                    own[column] = value
            own_rows[colony] = own
            machine_totals += own

        # Eq. 4: evaporate and deposit, clamped.  Every row is about to
        # change, so the memoized normalizers go stale here.
        self._row_stats.clear()
        no_deposit = np.zeros(width)
        keep = 1.0 - self.rho
        for colony, row in self._tau.items():
            own = own_rows.get(colony)
            others_count = depositors - (1 if colony in deposits else 0)
            if own is None:
                own = no_deposit
            if others_count:
                others_mean = (machine_totals - own) / others_count
            else:
                others_mean = no_deposit
            effective = own - self.negative_feedback * others_mean
            new_row = keep * row + self.rho * effective
            np.clip(new_row, self.tau_min, self.tau_max, out=new_row)
            if self.relative_floor > 0:
                floor = self.relative_floor * new_row.max()
                np.maximum(new_row, floor, out=new_row)
            self._tau[colony] = new_row

    def _fold_into_group_profiles(
        self, deposits: Dict[ColonyKey, Dict[int, float]]
    ) -> None:
        """EMA each *depositing* colony's row into its group profile.

        Only colonies with fresh evidence contribute — idle or just-arrived
        colonies would otherwise dilute the accumulated group experience
        back toward uniform, and the whole point of job-level exchange is
        that a finished job's experience outlives it."""
        if not self.exchange & ExchangeLevel.JOB:
            return
        for colony in deposits:
            group = self._colony_group.get(colony)
            if group is None or colony not in self._tau:
                continue
            row = self._tau[colony]
            profile = self._group_profiles.get(group)
            if profile is None:
                self._group_profiles[group] = row.copy()
            else:
                w = self.profile_ema
                self._group_profiles[group] = (1.0 - w) * profile + w * row

    def group_profile(self, group: Hashable) -> Dict[int, float]:
        """Inheritable pheromone profile of a job group (copy)."""
        profile = self._group_profiles.get(group)
        if profile is None:
            return {}
        return dict(zip(self.machine_ids, profile.tolist()))

    # ------------------------------------------------------------- internals
    def _compute_deposits(
        self, items: Sequence[TaskFeedback]
    ) -> Dict[ColonyKey, Dict[int, float]]:
        """Per-colony ``S(j, m) = sum_n dtau_n`` with exchange averaging."""
        if not items:
            return {}

        # Colony mean energies (the numerator of Eq. 5).
        by_colony: Dict[ColonyKey, List[TaskFeedback]] = {}
        for item in items:
            by_colony.setdefault(item.colony, []).append(item)

        deposits: Dict[ColonyKey, Dict[int, float]] = {}
        for colony, colony_items in by_colony.items():
            self.ensure_colony(colony)
            mean_energy = sum(f.energy_joules for f in colony_items) / len(colony_items)
            # Raw per-task deltas, grouped by machine.
            per_machine: Dict[int, List[float]] = {}
            for item in colony_items:
                delta = mean_energy / item.energy_joules
                per_machine.setdefault(item.machine_id, []).append(delta)

            if self.exchange & ExchangeLevel.MACHINE:
                per_machine = self._machine_exchange(per_machine)

            deposits[colony] = {m: sum(values) for m, values in per_machine.items()}

        if self.exchange & ExchangeLevel.JOB:
            deposits = self._job_exchange(deposits, by_colony)
        return deposits

    def _machine_exchange(
        self, per_machine: Mapping[int, List[float]]
    ) -> Dict[int, List[float]]:
        """Replace each machine's deltas with its hardware group's average.

        Every member of a group with evidence receives the group's mean
        per-task delta, replicated ``N_G / |G|`` times — total deposited
        pheromone mass is preserved, only redistributed across the group.
        """
        grouped: Dict[Tuple[int, ...], List[float]] = {}
        for machine_id, deltas in per_machine.items():
            # Feedback can trail a machine's removal by one control
            # interval; a departed machine falls back to a singleton group.
            group = self._group_of.get(machine_id, (machine_id,))
            grouped.setdefault(group, []).extend(deltas)
        result: Dict[int, List[float]] = {}
        for group, deltas in grouped.items():
            mean_delta = sum(deltas) / len(deltas)
            share = len(deltas) / len(group)
            for machine_id in group:
                result[machine_id] = [mean_delta * share]
        return result

    def _job_exchange(
        self,
        deposits: Dict[ColonyKey, Dict[int, float]],
        by_colony: Mapping[ColonyKey, List[TaskFeedback]],
    ) -> Dict[ColonyKey, Dict[int, float]]:
        """Average deposits across demand-similar colonies (job groups).

        Every *live* colony of a group receives the group's averaged
        deposit — including colonies that completed nothing themselves this
        interval, which is exactly how a fresh job benefits from its
        homogeneous siblings' experience (Section IV-D)."""
        group_of_colony: Dict[ColonyKey, Hashable] = {}
        for colony, colony_items in by_colony.items():
            group_of_colony[colony] = colony_items[0].job_group
        groups: Dict[Hashable, List[ColonyKey]] = {}
        for colony, group in group_of_colony.items():
            groups.setdefault(group, []).append(colony)

        result: Dict[ColonyKey, Dict[int, float]] = {}
        for group, contributors in groups.items():
            if group is None:
                for colony in contributors:
                    result[colony] = deposits[colony]
                continue
            merged: Dict[int, float] = {}
            for colony in contributors:
                for machine_id, value in deposits[colony].items():
                    merged[machine_id] = merged.get(machine_id, 0.0) + value
            averaged = {m: v / len(contributors) for m, v in merged.items()}
            # All live members of the group share the averaged experience.
            # (Iteration stays in dict-insertion order — sets would make
            # downstream float folds depend on hash randomization.)
            recipients = [
                colony
                for colony, colony_group in self._colony_group.items()
                if colony_group == group and colony in self._tau
            ]
            recipients += [c for c in contributors if c not in recipients]
            for colony in recipients:
                result[colony] = dict(averaged)
        return result
