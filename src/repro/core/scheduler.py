"""The E-Ant adaptive task assigner (Sections III-IV).

E-Ant treats each job's map tasks and reduce tasks as ant colonies and
each (colony, machine) pair as a path whose pheromone encodes observed
energy efficiency.  Assignment on each TaskTracker heartbeat follows
Eq. 8 — pheromone attractiveness times the fairness heuristic — with two
paper-faithful behaviours:

* **Locality short-circuit**: with ``beta > 0`` a node-local pending map
  always wins the slot (Eq. 7's infinite-eta branch).  With ``beta = 0``
  locality is ignored, reproducing the energy dip at beta = 0 in
  Fig. 12(a).
* **Gated acceptance**: a slot on machine ``m`` is granted to the sampled
  colony only with probability proportional to ``m``'s pheromone relative
  to the colony's best machine, so energy-inefficient machines are left
  partially idle rather than greedily filled.  This is the mechanism that
  converts heterogeneity awareness into the Fig. 8(a) energy savings.
  During the first control interval no feedback exists yet, so E-Ant
  "initially follows Hadoop's default behavior" (Section III-A) and fills
  slots unconditionally.

Every control interval (default 5 min) the pheromone table is updated from
the task analyzer's Eq. 2 energy estimates via Eqs. 4-6 with the
configured exchange strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..hadoop.job import Job, Task, TaskKind, TaskReport
from ..hadoop.tasktracker import TrackerStatus
from ..observability.tracer import EventType
from ..schedulers.base import Scheduler
from .analyzer import TaskAnalyzer
from .convergence import ConvergenceDetector
from .heuristics import FairnessView, fairness_eta
from .pheromone import ExchangeLevel, PheromoneTable

__all__ = ["EAntConfig", "EAntScheduler"]


@dataclass(frozen=True)
class EAntConfig:
    """Tuning parameters of E-Ant.

    Parameters
    ----------
    beta:
        Weight of the heuristic (locality + fairness) term in Eq. 8.
        The paper's sensitivity analysis (Fig. 12(a)) peaks energy saving
        at ~0.1 and fairness grows with beta.  beta = 0 disables both the
        locality short-circuit and the fairness term entirely, exactly as
        the paper describes.
    beta_reference:
        The beta value at which the heuristic term enters with exponent 1
        (so the default beta equals the paper's recommended 0.1 operating
        point); the effective exponent is ``beta / beta_reference``.
    rho:
        Pheromone evaporation coefficient (Eq. 4).
    negative_feedback:
        Weight of the Eq. 6 cross-job term, applied against the *mean* of
        the competing colonies' deposits (0 disables; ablation knob).
    exchange:
        Active information-exchange strategies (Fig. 10's four settings).
    gating:
        Whether gated acceptance is applied at all.  Disabled gives an
        accept-first-sample variant (ablation knob).
    work_conserving:
        Whether a slot whose sampled candidates all rejected it is filled
        with the best candidate anyway while work is pending.  True by
        default; False restores strict gating, which idles slots and
        trades completion time for dynamic energy (ablation knob).
    fallback_quality_floor:
        Minimum relative machine quality for the work-conserving fallback.
        0 (default) never idles a slot while work pends; positive values
        let E-Ant keep machines idle that are this unattractive for every
        sampled colony, trading completion time for dynamic energy (the
        strict-gating ablation).
    gating_sharpness:
        Exponent applied to the relative machine quality in the acceptance
        probability.  The paper specifies assignment *probabilities*
        (Eq. 8) but not the slot-level acceptance mechanism; the exponent
        controls how aggressively below-best machines are left idle.
    min_acceptance:
        Floor of the gated-acceptance probability, guaranteeing progress
        even on the least attractive machine.
    candidates_per_slot:
        How many colonies are sampled for one slot before it is left
        idle — a rejected slot is offered to other colonies first.
    deterministic_selection:
        Replace probabilistic sampling with argmax over the Eq. 8 weights.
        Sampling noise in queue service order costs measurable completion
        time versus the Fair Scheduler's deterministic deficit ordering;
        argmax removes it while pheromone dynamics retain exploration.
    deficit_power:
        Exponent on the slot-deficit factor in sampling weights.  Above 1
        lets a starved job's deficit overpower the pheromone matching, so
        a job type whose favorite machines cover less capacity than its
        share of the work still drains steadily through overflow machines.
    selection_sharpness:
        Exponent on the pheromone attractiveness in the cross-job slot
        competition for MAP slots, analogous to ACO's alpha exponent;
        values above 1 sharpen the job-to-machine matching.  Reduce-slot
        competition always uses the literal Eq. 8 weight (exponent 1):
        reduce colonies see far fewer completions per interval, and
        sharpening that noisier evidence steers shuffle-heavy reduces onto
        slow machines during the reduce-bound drain phase.
    convergence_threshold:
        Revisit fraction defining a stable assignment (Section VI-C: 80 %).
    tau_min, tau_max:
        Pheromone clamps.
    """

    beta: float = 0.1
    beta_reference: float = 0.1
    rho: float = 0.5
    negative_feedback: float = 0.3
    exchange: ExchangeLevel = ExchangeLevel.BOTH
    gating: bool = True
    gating_sharpness: float = 3.0
    work_conserving: bool = True
    fallback_quality_floor: float = 0.0
    min_acceptance: float = 0.05
    candidates_per_slot: int = 3
    selection_sharpness: float = 2.0
    deficit_power: float = 2.0
    deterministic_selection: bool = False
    convergence_threshold: float = 0.8
    tau_min: float = 0.05
    tau_max: float = 1e9

    def __post_init__(self) -> None:
        if self.beta < 0:
            raise ValueError("beta must be non-negative")
        if self.gating_sharpness <= 0:
            raise ValueError("gating_sharpness must be positive")
        if not 0.0 < self.rho <= 1.0:
            raise ValueError("rho must be in (0, 1]")
        if not 0.0 <= self.min_acceptance <= 1.0:
            raise ValueError("min_acceptance must be in [0, 1]")
        if self.candidates_per_slot < 1:
            raise ValueError("candidates_per_slot must be >= 1")

    def with_exchange(self, exchange: ExchangeLevel) -> "EAntConfig":
        """Copy with a different exchange setting (Fig. 10 sweeps)."""
        return replace(self, exchange=exchange)


class EAntScheduler(Scheduler):
    """Heterogeneity-aware, energy-driven ACO task assignment."""

    name = "e-ant"

    def __init__(
        self,
        config: EAntConfig = EAntConfig(),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.config = config
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.pheromones: Optional[PheromoneTable] = None
        self.analyzer: Optional[TaskAnalyzer] = None
        self.convergence = ConvergenceDetector(threshold=config.convergence_threshold)
        self.intervals_elapsed = 0
        #: (time, colony, machine_id) of every launch (adaptiveness figures)
        self.assignment_log: List[Tuple[float, Hashable, int]] = []
        #: slot-offer telemetry: offered/filled/idled per task kind
        self.slot_stats: Dict[str, int] = {
            "map_offered": 0,
            "map_filled": 0,
            "map_no_work": 0,
            "reduce_offered": 0,
            "reduce_filled": 0,
            "reduce_no_work": 0,
        }

    # ------------------------------------------------------------- lifecycle
    def bind(self, jobtracker) -> None:
        super().bind(jobtracker)
        cluster = jobtracker.cluster
        groups = list(cluster.homogeneous_groups().values())
        self.pheromones = PheromoneTable(
            machine_ids=cluster.machine_ids,
            rho=self.config.rho,
            negative_feedback=self.config.negative_feedback,
            machine_groups=groups,
            exchange=self.config.exchange,
            tau_min=self.config.tau_min,
            tau_max=self.config.tau_max,
        )
        self.analyzer = TaskAnalyzer(cluster)
        # Convergence is tracked at hardware-group granularity: exchange
        # treats same-type machines as interchangeable, so "revisiting the
        # same machines" (Section VI-C) means revisiting the same types.
        self._machine_group = {
            machine_id: signature
            for signature, ids in cluster.homogeneous_groups().items()
            for machine_id in ids
        }
        # The audit path reuses cached slot totals instead of re-walking
        # the cluster on every traced decision; fleet changes (join /
        # decommission) refresh the cache via the machine hooks below.
        self._static_slot_totals = cluster.total_slots()
        jobtracker.start_control_loop()

    def on_machine_added(self, machine) -> None:
        """Seed pheromone paths to a machine that joined mid-run.

        The new machine's rows start at the table's prior — no evidence
        yet, exactly like every path at t=0 — and its hardware group is
        extended so machine-level exchange immediately shares the group's
        experience with it.
        """
        assert self.pheromones is not None and self.analyzer is not None
        group = self.jt.cluster.group_of(machine.machine_id)
        self.pheromones.add_machine(machine.machine_id, group)
        self.analyzer.add_machine(machine)
        signature = machine.spec.hardware_signature()
        for member in group:
            self._machine_group[member] = signature
        self._static_slot_totals = self.jt.cluster.total_slots()

    def on_machine_removed(self, machine) -> None:
        """Prune stale pheromone paths to a decommissioned machine."""
        assert self.pheromones is not None
        self.pheromones.remove_machine(machine.machine_id)
        self._static_slot_totals = self.jt.cluster.total_slots()

    def on_job_added(self, job: Job) -> None:
        assert self.pheromones is not None
        signature = job.profile.resource_signature()
        self.pheromones.ensure_colony(
            (job.job_id, TaskKind.MAP), group=(signature, TaskKind.MAP)
        )
        if job.num_reduces:
            self.pheromones.ensure_colony(
                (job.job_id, TaskKind.REDUCE), group=(signature, TaskKind.REDUCE)
            )

    def on_job_removed(self, job: Job) -> None:
        assert self.pheromones is not None
        self.pheromones.drop_colony((job.job_id, TaskKind.MAP))
        self.pheromones.drop_colony((job.job_id, TaskKind.REDUCE))

    def on_task_completed(self, report: TaskReport) -> None:
        assert self.analyzer is not None
        self.analyzer.observe(report)

    def on_control_interval(self, now: float) -> None:
        """The adaptive step: pheromone update from the interval's feedback."""
        assert self.analyzer is not None and self.pheromones is not None
        feedback = self.analyzer.drain()
        self.pheromones.update(feedback)
        # Feedback for jobs that finished mid-interval resurrects their
        # colonies just long enough to fold their experience into group
        # profiles; drop those zombies now.
        active_keys = set()
        for job in self.jt.active_jobs:
            active_keys.add((job.job_id, TaskKind.MAP))
            active_keys.add((job.job_id, TaskKind.REDUCE))
        for colony in self.pheromones.colonies:
            if colony not in active_keys:
                self.pheromones.drop_colony(colony)
        self.convergence.close_interval(now)
        self.intervals_elapsed += 1
        if self.tracer.enabled:
            for colony in self.pheromones.colonies:
                job_id, kind = colony
                self.tracer.emit(
                    EventType.PHEROMONE_UPDATE,
                    now,
                    interval=self.intervals_elapsed,
                    job_id=job_id,
                    kind=kind.value,
                    feedback_tasks=sum(1 for f in feedback if f.colony == colony),
                    tau={m: v for m, v in self.pheromones.attractiveness_row(colony).items()},
                )

    # ------------------------------------------------------------ assignment
    def select_tasks(self, status: TrackerStatus) -> List[Task]:
        assignments: List[Task] = []
        stats = self.slot_stats
        fairness: Optional[FairnessView] = None
        # The candidate list is rebuilt only after a *successful*
        # assignment (an accepted task changes pending/running counts for
        # the next slot); a rejected or idled offer leaves every job's
        # state and the list contents untouched, so the same list is
        # offered to the tracker's remaining slots.  At thousand-node
        # fleets most heartbeats find no pending work, and that common
        # case now costs one list comprehension instead of one per slot.
        machine_id = status.machine_id
        if status.free_map_slots:
            pending = self.jobs_with_pending_maps()
            for _ in range(status.free_map_slots):
                stats["map_offered"] += 1
                if not pending:
                    stats["map_no_work"] += 1
                    continue
                if fairness is None:
                    fairness = self._fairness_view()
                task = self._fill_map_slot(machine_id, fairness, pending)
                if task is not None:
                    stats["map_filled"] += 1
                    assignments.append(task)
                    pending = self.jobs_with_pending_maps()
        if status.free_reduce_slots:
            schedulable = self.jobs_with_schedulable_reduces()
            for _ in range(status.free_reduce_slots):
                stats["reduce_offered"] += 1
                if not schedulable:
                    stats["reduce_no_work"] += 1
                    continue
                if fairness is None:
                    fairness = self._fairness_view()
                task = self._fill_reduce_slot(machine_id, fairness, schedulable)
                if task is not None:
                    stats["reduce_filled"] += 1
                    assignments.append(task)
                    schedulable = self.jobs_with_schedulable_reduces()
        return assignments

    def _fairness_view(self) -> FairnessView:
        """The Eq. 7 snapshot, built lazily on the first slot with work.

        Job completions happen on task-finish events, never inside a
        heartbeat's assignment loop, so one snapshot per heartbeat sees
        the same pool and active-job count every slot reads.
        """
        return FairnessView(
            pool_slots=self.total_cluster_slots(),
            active_jobs=max(1, len(self.jt.active_jobs)),
        )

    # --------------------------------------------------------------- helpers
    def _eta(self, job: Job, kind: TaskKind, fairness: FairnessView) -> float:
        """The Eq. 7 fairness heuristic raised to the Eq. 8 exponent.

        The heuristic combines the paper's eta with the quantitative slot
        deficit (see ``_deficit``); ``beta`` scales its overall influence,
        normalized so that ``beta == beta_reference`` gives exponent 1.
        """
        if self.config.beta == 0:
            return 1.0
        term = fairness.eta(job.occupied_slots) * self._deficit(job, kind) ** (
            self.config.deficit_power
        )
        return term ** (self.config.beta / self.config.beta_reference)

    def _deficit(self, job: Job, kind: TaskKind) -> float:
        """How far the job is below its per-kind fair share, >= 0.5.

        Multiplying the Eq. 8 sampling weight by the slot deficit serves
        the most-starved jobs first in expectation — the quantitative form
        of Eq. 7's 'the higher the degree of unfairness, the greater the
        need to schedule the tasks belonging to this job'.  The floor
        keeps at-share jobs sampleable."""
        map_slots, reduce_slots = self.jt.cluster.total_slots()
        pool = map_slots if kind is TaskKind.MAP else reduce_slots
        share = pool / max(1, len(self.jt.active_jobs))
        running = job.running_maps if kind is TaskKind.MAP else job.running_reduces
        return max(share - running, 0.5)

    def _selection_arrays(
        self,
        jobs: List[Job],
        kind: TaskKind,
        machine_id: int,
        fairness: FairnessView,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-candidate pheromone attractiveness and Eq. 8 sampling weight.

        One vectorized pass over all candidates of the slot offer: the
        pheromone table hands back every colony's Eq. 3 attractiveness at
        once, and eta/deficit/weight (Eqs. 7-8) are evaluated as
        elementwise array expressions.  Each element goes through the same
        float operations in the same order as the scalar loop this
        replaced (kept as the differential reference), so the sampling
        probabilities — and therefore the RNG draws — are bit-identical.

        The tau array rides along so the decision audit can decompose the
        weights without re-normalizing the pheromone rows.
        """
        assert self.pheromones is not None
        sharpness = self.config.selection_sharpness if kind is TaskKind.MAP else 1.0
        is_map = kind is TaskKind.MAP
        taus = self.pheromones.attractiveness_many(
            [(job.job_id, kind) for job in jobs], machine_id
        )
        if self.config.beta == 0:
            return taus, taus**sharpness * 1.0
        if fairness.pool_slots <= 0:
            raise ValueError("pool must have slots")
        map_slots, reduce_slots = self.jt.cluster.total_slots()
        pool = map_slots if is_map else reduce_slots
        share = pool / max(1, len(self.jt.active_jobs))
        count = len(jobs)
        occupied = np.empty(count)
        running = np.empty(count)
        if is_map:
            for i, job in enumerate(jobs):
                occupied[i] = job.occupied_slots
                running[i] = job.running_maps
        else:
            for i, job in enumerate(jobs):
                occupied[i] = job.occupied_slots
                running[i] = job.running_reduces
        # Eq. 7 (fairness_eta) and the slot deficit, elementwise.
        denominator = np.maximum(
            1.0 - (fairness.min_share - occupied) / fairness.pool_slots, 1e-3
        )
        deficit = np.maximum(share - running, 0.5)
        heuristic = ((1.0 / denominator) * deficit**self.config.deficit_power) ** (
            self.config.beta / self.config.beta_reference
        )
        return taus, taus**sharpness * heuristic

    def _selection_weights(
        self,
        jobs: List[Job],
        kind: TaskKind,
        machine_id: int,
        fairness: FairnessView,
    ) -> np.ndarray:
        """The Eq. 8 sampling weight of each candidate colony for one slot."""
        return self._selection_arrays(jobs, kind, machine_id, fairness)[1]

    def _sample_job(
        self,
        jobs: List[Job],
        kind: TaskKind,
        machine_id: int,
        fairness: FairnessView,
        weights: Optional[np.ndarray] = None,
    ) -> Optional[Job]:
        """Sample one colony: Eq. 8 weights (pheromone x heuristic) scaled
        by the job's slot deficit.

        Callers that already hold this candidate list's ``_selection_weights``
        (e.g. to build audit rows) pass them in to avoid recomputation.
        """
        if weights is None:
            weights = self._selection_weights(jobs, kind, machine_id, fairness)
        total = weights.sum()
        if total <= 0:
            return jobs[int(self.rng.integers(len(jobs)))]
        if self.config.deterministic_selection:
            return jobs[int(np.argmax(weights))]
        # Inlined Generator.choice(len(jobs), p=weights/total): identical
        # stream consumption (one random()) and identical index for the
        # same draw, minus choice()'s per-call p-validation overhead.
        cdf = (weights / total).cumsum()
        cdf /= cdf[-1]
        index = min(int(cdf.searchsorted(self.rng.random(), side="right")), len(jobs) - 1)
        return jobs[index]

    def _accepts(
        self, job: Job, kind: TaskKind, machine_id: int, fairness: FairnessView
    ) -> bool:
        """Gated acceptance: keep the slot only if this machine is good
        enough for the colony (relative to its best-known machine).

        A job with no running task of this kind bypasses the gate (it is
        maximally starved in Eq. 7 terms): gating may slow a job down but
        never stall it outright."""
        if not self.config.gating or self.intervals_elapsed == 0:
            return True
        running = job.running_maps if kind is TaskKind.MAP else job.running_reduces
        if running == 0:
            return True
        assert self.pheromones is not None
        quality = self.pheromones.relative_quality((job.job_id, kind), machine_id)
        probability = max(
            self.config.min_acceptance, quality**self.config.gating_sharpness
        )
        return bool(self.rng.random() < probability)

    def _record(self, task: Task, machine_id: int) -> None:
        colony = (task.job.job_id, task.kind)
        self.convergence.record_assignment(
            colony, self._machine_group[machine_id], self.jt.sim.now
        )
        self.assignment_log.append((self.jt.sim.now, colony, machine_id))

    # -------------------------------------------------------------- auditing
    def _decision_rows(
        self,
        jobs: List[Job],
        kind: TaskKind,
        machine_id: int,
        fairness: FairnessView,
        taus: np.ndarray,
        weights: np.ndarray,
    ) -> List[Dict[str, Any]]:
        """One audit row per candidate colony, from the Eq. 8 ``taus`` and
        ``weights`` the sampler already computed — never recomputed.

        Probabilities mirror ``_sample_job``'s first draw: the weights
        normalized over the candidate tier, uniform when degenerate.  Rows
        are emitted as plain dicts in the wire shape of
        :class:`~repro.observability.audit.CandidateRow` (parse back with
        :meth:`Tracer.decisions`); skipping the record objects keeps the
        traced hot path cheap.
        """
        total = float(weights.sum())
        uniform = 1.0 / len(jobs)
        # Share computed once per decision, not once per row (_deficit would
        # re-walk the cluster's slot totals for every candidate).
        map_slots, reduce_slots = self._static_slot_totals
        is_map = kind is TaskKind.MAP
        pool = map_slots if is_map else reduce_slots
        share = pool / max(1, len(self.jt.active_jobs))
        # Hoisted from fairness.eta(): min_share is a property that would
        # re-divide pool/active_jobs for every row.
        min_share = fairness.min_share
        pool_slots = fairness.pool_slots
        rows: List[Dict[str, Any]] = []
        for job, tau, weight in zip(jobs, taus, weights):
            headroom = share - (job.running_maps if is_map else job.running_reduces)
            w = float(weight)
            rows.append(
                {
                    "job_id": job.job_id,
                    "tau": float(tau),
                    "eta": fairness_eta(min_share, job.occupied_slots, pool_slots),
                    "deficit": headroom if headroom > 0.5 else 0.5,
                    "weight": w,
                    "probability": w / total if total > 0 else uniform,
                }
            )
        return rows

    def _emit_decision(
        self,
        rows: List[Dict[str, Any]],
        kind: TaskKind,
        machine_id: int,
        path: str,
        task: Optional[Task],
    ) -> None:
        self.tracer.emit(
            EventType.DECISION,
            self.jt.sim.now,
            machine_id=machine_id,
            kind=kind.value,
            path=path,
            chosen_job=None if task is None else task.job.job_id,
            task_id=None if task is None else task.task_id,
            candidates=rows,
        )

    def _priority_tier(self, jobs: List[Job], kind: TaskKind) -> List[Job]:
        """Jobs below their per-kind fair share, if any; else all jobs.

        Eq. 7's fairness term alone has too small a dynamic range to keep
        starved jobs from waiting behind wide jobs, so — "similar to the
        Hadoop Fair Scheduler" (Section IV-C.4) — jobs under their minimum
        share form a strict priority tier.  Eq. 8 sampling applies within
        the tier, preserving the energy-aware job-to-machine matching.
        """
        map_slots, reduce_slots = self.jt.cluster.total_slots()
        pool = map_slots if kind is TaskKind.MAP else reduce_slots
        active = max(1, len(self.jt.active_jobs))
        share = pool / active
        if kind is TaskKind.MAP:
            starved = [j for j in jobs if j.running_maps < share]
        else:
            starved = [j for j in jobs if j.running_reduces < share]
        return starved if starved else jobs

    def _fill_map_slot(
        self, machine_id: int, fairness: FairnessView, pending: List[Job]
    ) -> Optional[Task]:
        jobs = self._priority_tier(pending, TaskKind.MAP)
        if not jobs:
            return None

        # Locality short-circuit (eta = infinity branch of Eq. 7).
        if self.config.beta > 0:
            local_jobs = [j for j in jobs if j.local_pending_map(machine_id) is not None]
            if local_jobs:
                taus, weights = self._selection_arrays(
                    local_jobs, TaskKind.MAP, machine_id, fairness
                )
                rows = (
                    self._decision_rows(
                        local_jobs, TaskKind.MAP, machine_id, fairness, taus, weights
                    )
                    if self.tracer.enabled
                    else None
                )
                job = self._sample_job(
                    local_jobs, TaskKind.MAP, machine_id, fairness, weights=weights
                )
                task = job.take_map(machine_id, prefer_local=True)
                if task is not None:
                    self._record(task, machine_id)
                    if rows is not None:
                        self._emit_decision(rows, TaskKind.MAP, machine_id, "local", task)
                    return task

        return self._gated_fill(jobs, TaskKind.MAP, machine_id, fairness)

    def _fill_reduce_slot(
        self, machine_id: int, fairness: FairnessView, schedulable: List[Job]
    ) -> Optional[Task]:
        candidates = self._priority_tier(schedulable, TaskKind.REDUCE)
        if not candidates:
            return None
        return self._gated_fill(candidates, TaskKind.REDUCE, machine_id, fairness)

    def _take(self, job: Job, kind: TaskKind, machine_id: int) -> Optional[Task]:
        if kind is TaskKind.MAP:
            task = job.take_map(machine_id, prefer_local=True)
        else:
            task = job.take_reduce()
        if task is not None:
            self._record(task, machine_id)
        return task

    def _pending_count(self, jobs: List[Job], kind: TaskKind) -> int:
        """Total pending tasks of ``kind`` across ``jobs``.

        Computed once per rejected slot and shared by the work-conserving
        check and the effective floor, which each summed it separately."""
        if kind is TaskKind.MAP:
            return sum(j.pending_map_count for j in jobs)
        return sum(j.pending_reduce_count for j in jobs)

    def _work_conserving(self, pending: int) -> bool:
        """Should a fully-rejected slot be filled anyway?

        Leaving a slot idle only saves energy when the pending work can
        complete elsewhere without extending any job's critical path; the
        cluster's idle floor is paid either way, and map/reduce work is
        short relative to job lifetimes.  E-Ant therefore falls back to
        the best sampled candidate whenever pending work of this kind
        exists (``work_conserving = True``, the default) — gating then
        shapes *which* colony wins a slot rather than whether it is used.
        Setting ``EAntConfig.work_conserving = False`` restores strict
        gating (the configuration the ablation benchmark exercises)."""
        return self.config.work_conserving and pending > 0

    def _gated_fill(
        self,
        jobs: List[Job],
        kind: TaskKind,
        machine_id: int,
        fairness: FairnessView,
    ) -> Optional[Task]:
        """Sample colonies for the slot; gate; fall back under backlog."""
        assert self.pheromones is not None
        candidates = list(jobs)
        taus, first_weights = self._selection_arrays(candidates, kind, machine_id, fairness)
        weights: Optional[np.ndarray] = first_weights
        rows = (
            self._decision_rows(candidates, kind, machine_id, fairness, taus, first_weights)
            if self.tracer.enabled
            else None
        )
        sampled: List[Job] = []
        for _ in range(min(self.config.candidates_per_slot, len(candidates))):
            job = self._sample_job(candidates, kind, machine_id, fairness, weights=weights)
            weights = None  # recompute for the shrunken list on later draws
            if job is None:
                return None
            sampled.append(job)
            if self._accepts(job, kind, machine_id, fairness):
                task = self._take(job, kind, machine_id)
                if task is not None:
                    if rows is not None:
                        self._emit_decision(rows, kind, machine_id, "gated", task)
                    return task
            candidates.remove(job)
            if not candidates:
                break
        pending = self._pending_count(jobs, kind) if sampled else 0
        if sampled and self._work_conserving(pending):
            best = max(
                sampled,
                key=lambda j: self.pheromones.relative_quality((j.job_id, kind), machine_id),
            )
            quality = self.pheromones.relative_quality((best.job_id, kind), machine_id)
            if quality >= self._effective_floor(pending, kind):
                task = self._take(best, kind, machine_id)
                if task is not None:
                    if rows is not None:
                        self._emit_decision(rows, kind, machine_id, "fallback", task)
                    return task
        if rows is not None:
            self._emit_decision(rows, kind, machine_id, "idle", None)
        return None  # slot left idle this heartbeat

    def _effective_floor(self, pending: int, kind: TaskKind) -> float:
        """Quality floor for the fallback, relaxed under heavy backlog.

        This realizes the Section II observation that the energy-optimal
        *number* of tasks per machine depends on the arrival rate: at low
        pressure E-Ant keeps inefficient machines idle (floor active); when
        pending work exceeds twice the slot pool, every machine is needed
        and the floor drops away."""
        map_slots, reduce_slots = self.jt.cluster.total_slots()
        pool = map_slots if kind is TaskKind.MAP else reduce_slots
        if pending > 2 * pool:
            return 0.0
        return self.config.fallback_quality_floor
