"""Retained naive implementations of every optimized hot path.

The kernel and assignment-loop optimizations (indexed heap dispatch,
memoized pheromone normalizers, cached slot totals, gated tracker-expiry
sweeps, batched energy integration) are all *pure* transformations: they
must compute exactly the same floating-point expressions in the same
order as the straightforward code they replaced, so every simulation
stays bit-identical.  This module keeps the straightforward code alive
as the executable specification of that contract.

:func:`reference_mode` swaps the naive implementations in (monkey-style,
on the classes themselves) for the duration of a ``with`` block; the
differential suite (``tests/differential/``) runs the full scenario
corpus both ways and requires identical
:func:`~repro.runner.record.record_digest` values.  A drift means an
optimization changed observable behaviour — exactly the regression the
optimized code promises never to make.

The naive bodies are faithful transcriptions of the pre-optimization
code, not simplified rewrites: ``_stats`` recomputes the row normalizers
on every query, ``total_slots`` re-sums the fleet, the simulator run
loop composes :meth:`EventHeap.pop` + :meth:`Event._dispatch` one frame
per event, the expiry sweep scans every tracker on every heartbeat, and
the energy integrator goes through the :class:`PowerModel` helper
methods.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np

from ..cluster.machine import Machine
from ..cluster.power import EnergyAccumulator
from ..cluster.topology import Cluster
from ..hadoop.jobtracker import JobTracker
from ..observability.tracer import EventType
from ..simulation.engine import PRIORITY_NORMAL, PRIORITY_URGENT, Simulator
from ..simulation.events import Event, SimulationError
from .pheromone import ColonyKey, PheromoneTable
from .scheduler import EAntScheduler

__all__ = ["reference_mode", "REFERENCE_PATCHES"]


# --------------------------------------------------------------- pheromone
def _reference_stats(self: PheromoneTable, colony: ColonyKey) -> Tuple[float, float]:
    """Eq. 3 normalizers recomputed from the row on every query (no memo).

    The scalar ``sum`` accumulates left-to-right exactly like the
    ``cumsum`` the optimized memo uses, so the two agree bit-for-bit.
    """
    values = self._tau[colony].tolist()
    return (sum(values), max(values))


def _reference_apply_update(
    self: PheromoneTable, deposits: Dict[ColonyKey, Dict[int, float]]
) -> None:
    """Eqs. 4 and 6 as per-machine scalar loops (the pre-vectorization code).

    Works over the dense rows through the column index, but every float
    expression — the Eq. 6 machine totals, the per-colony negative
    feedback, the evaporate/deposit/clamp chain and the relative floor —
    is evaluated one machine at a time in the original order.
    """
    effective: Dict[ColonyKey, Dict[int, float]] = {}
    machine_totals: Dict[int, float] = {}
    depositors = max(len(deposits), 1)
    for colony, per_machine in deposits.items():
        for machine_id, value in per_machine.items():
            machine_totals[machine_id] = machine_totals.get(machine_id, 0.0) + value
    for colony in self._tau:
        effective[colony] = {}
        own = deposits.get(colony, {})
        others_count = depositors - (1 if colony in deposits else 0)
        for machine_id in self.machine_ids:
            own_value = own.get(machine_id, 0.0)
            others_sum = machine_totals.get(machine_id, 0.0) - own_value
            others_mean = others_sum / others_count if others_count else 0.0
            effective[colony][machine_id] = (
                own_value - self.negative_feedback * others_mean
            )

    self._row_stats.clear()
    col = self._col
    for colony, row in self._tau.items():
        updates = effective.get(colony, {})
        new_row = row.copy()
        for machine_id in self.machine_ids:
            column = col[machine_id]
            new = (1.0 - self.rho) * float(row[column]) + self.rho * updates.get(
                machine_id, 0.0
            )
            new_row[column] = min(self.tau_max, max(self.tau_min, new))
        if self.relative_floor > 0:
            floor = self.relative_floor * max(new_row.tolist())
            for machine_id in self.machine_ids:
                column = col[machine_id]
                if new_row[column] < floor:
                    new_row[column] = floor
        self._tau[colony] = new_row


def _reference_fold_into_group_profiles(
    self: PheromoneTable, deposits: Dict[ColonyKey, Dict[int, float]]
) -> None:
    """Profile EMA folded one machine at a time (the pre-vectorization code)."""
    from .pheromone import ExchangeLevel

    if not self.exchange & ExchangeLevel.JOB:
        return
    for colony in deposits:
        group = self._colony_group.get(colony)
        if group is None or colony not in self._tau:
            continue
        row = self._tau[colony]
        profile = self._group_profiles.get(group)
        if profile is None:
            self._group_profiles[group] = row.copy()
        else:
            w = self.profile_ema
            merged = profile.copy()
            for column in range(len(self.machine_ids)):
                merged[column] = (1.0 - w) * float(profile[column]) + w * float(
                    row[column]
                )
            self._group_profiles[group] = merged


# --------------------------------------------------------------- scheduler
def _reference_selection_arrays(self, jobs, kind, machine_id, fairness):
    """Per-candidate Eq. 8 scoring as the original per-job scalar loop.

    ``attractiveness`` / ``_eta`` / ``_deficit`` evaluate one candidate at
    a time; the vectorized scorer must reproduce these weights (and hence
    the sampler's RNG draws) bit-for-bit.
    """
    from ..hadoop.job import TaskKind

    assert self.pheromones is not None
    sharpness = self.config.selection_sharpness if kind is TaskKind.MAP else 1.0
    taus = []
    weights = []
    for job in jobs:
        tau = self.pheromones.attractiveness((job.job_id, kind), machine_id)
        taus.append(tau)
        weights.append(tau**sharpness * self._eta(job, kind, fairness))
    return np.array(taus), np.array(weights)


# ----------------------------------------------------------------- cluster
def _reference_total_slots(self: Cluster) -> Tuple[int, int]:
    """Fleet capacity re-summed on every call (no memo)."""
    maps = sum(m.spec.map_slots for m in self.machines.values() if not m.decommissioned)
    reduces = sum(
        m.spec.reduce_slots for m in self.machines.values() if not m.decommissioned
    )
    return (maps, reduces)


# --------------------------------------------------------------- simulator
def _reference_timeout(self: Simulator, delay: float, value: Any = None) -> Event:
    """``Event(sim)`` + ``heap.push`` — no slot-by-slot construction."""
    if delay < 0:
        raise ValueError(f"negative timeout delay: {delay}")
    event = Event(self)
    event._value = value
    event._triggered = True
    event._heap_seq = self._heap.push(self._now + delay, PRIORITY_NORMAL, event)
    return event


def _reference_schedule_dispatch(self: Simulator, event: Event) -> None:
    """Urgent-priority queueing through the public heap API."""
    event._heap_seq = self._heap.push(self._now, PRIORITY_URGENT, event)


def _reference_run(self: Simulator, until: Optional[float] = None) -> None:
    """``step()``-composed run loop: one frame per event, no inlining.

    ``stop()`` is tested at the top of each iteration; the optimized loop
    tests it immediately after a dispatch.  The flag can only flip
    *during* a dispatch, so both loops dispatch exactly the same events.
    """
    if self._running:
        raise SimulationError("simulator is already running (re-entrant run)")
    self._running = True
    self._stopped = False
    heap = self._heap
    if self.tracer.enabled:
        self.tracer.emit(EventType.SIM_START, self._now, until=until, queued=len(heap))
    dispatched = 0
    last_event_time = self._now
    try:
        if until is not None and until < self._now:
            raise ValueError(f"run(until={until}) is in the past (now={self._now})")
        while not self._stopped:
            entry = heap.peek()
            if entry is None:
                break
            if until is not None and entry[0] > until:
                break
            when, _priority, _seq, event = heap.pop()
            self._now = when
            dispatched += 1
            event._dispatch()
        last_event_time = self._now
        if until is not None and not self._stopped:
            self._now = until
    finally:
        self._dispatched += dispatched
        self._running = False
        if self.tracer.enabled:
            self.tracer.emit(
                EventType.SIM_END,
                last_event_time,
                clock=self._now,
                dispatched=self._dispatched,
                queued=len(heap),
            )


# -------------------------------------------------------------- jobtracker
def _reference_expire_dead_trackers(self: JobTracker) -> None:
    """Full tracker scan on every heartbeat (no staleness lower bound)."""
    expiry = self.config.tracker_expiry
    if expiry <= 0:
        return
    now = self.sim.now
    for machine_id, tracker in list(self.trackers.items()):
        last = self.last_heartbeat.get(machine_id)
        if last is None or now - last < expiry:
            continue
        self.expire_tracker(machine_id)


# ------------------------------------------------------------------ energy
def _reference_machine_advance(self: Machine) -> None:
    """Close the utilization/energy window unconditionally (no zero-length
    fast path)."""
    now = self._now()
    util = min(self._busy_cpu / self.spec.cores, 1.0)
    self._util_seconds += util * (now - self._util_last_time)
    self._util_last_time = now
    assert self.energy is not None
    self.energy.advance(now, util)


def _reference_energy_advance(
    self: EnergyAccumulator, now: float, new_utilization: float
) -> None:
    """Integrate through the ``PowerModel`` helpers (no inlining)."""
    if now < self._last_time:
        raise ValueError(f"time went backwards: {now} < {self._last_time}")
    duration = now - self._last_time
    if duration > 0 and self.powered:
        self.idle_joules += self.model.idle_energy(duration)
        dynamic = self.model.dynamic_energy(self._utilization, duration)
        if self.dynamic_scale != 1.0:
            dynamic *= self.dynamic_scale
        self.dynamic_joules += dynamic
    self._last_time = now
    self._utilization = min(max(new_utilization, 0.0), 1.0)
    if self.keep_trace:
        self._trace.append((now, self._utilization))


#: (class, attribute) -> naive implementation, the full patch set applied by
#: :func:`reference_mode`.  Exposed so tests can assert the set stays in sync
#: with the optimizations it shadows.
REFERENCE_PATCHES: Dict[Tuple[type, str], Any] = {
    (PheromoneTable, "_stats"): _reference_stats,
    (PheromoneTable, "_apply_update"): _reference_apply_update,
    (PheromoneTable, "_fold_into_group_profiles"): _reference_fold_into_group_profiles,
    (EAntScheduler, "_selection_arrays"): _reference_selection_arrays,
    (Cluster, "total_slots"): _reference_total_slots,
    (Simulator, "timeout"): _reference_timeout,
    (Simulator, "_schedule_dispatch"): _reference_schedule_dispatch,
    (Simulator, "run"): _reference_run,
    (JobTracker, "_expire_dead_trackers"): _reference_expire_dead_trackers,
    (Machine, "_advance"): _reference_machine_advance,
    (EnergyAccumulator, "advance"): _reference_energy_advance,
}


@contextmanager
def reference_mode() -> Iterator[None]:
    """Run everything inside the block on the naive reference paths.

    Swaps every entry of :data:`REFERENCE_PATCHES` onto its class and
    restores the optimized implementations on exit (also on exception).
    Not reentrant and not thread-safe — it rewrites class attributes —
    which is fine for its one purpose: differential testing.
    """
    saved = {
        (cls, name): cls.__dict__[name] for (cls, name) in REFERENCE_PATCHES
    }
    try:
        for (cls, name), naive in REFERENCE_PATCHES.items():
            setattr(cls, name, naive)
        yield
    finally:
        for (cls, name), original in saved.items():
            setattr(cls, name, original)
