"""Convergence detection for E-Ant's search speed (Section VI-C).

The paper defines a *stable* solution as a control interval in which more
than 80 % of a job's tasks "revisit the same machines compared with the
assignment in the previous interval".  We measure that as the overlap of
the per-machine assignment distributions of two consecutive intervals::

    overlap = sum_m min( share_t(m), share_{t-1}(m) )

which is 1.0 for identical distributions and 0.0 for disjoint ones.  The
convergence time of a job is the first interval end at which the overlap
crosses the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

__all__ = ["ConvergenceDetector", "distribution_overlap"]


def distribution_overlap(
    previous: Dict[int, int],
    current: Dict[int, int],
) -> float:
    """Overlap in [0, 1] between two per-machine assignment count maps."""
    total_prev = sum(previous.values())
    total_cur = sum(current.values())
    if total_prev == 0 or total_cur == 0:
        return 0.0
    overlap = 0.0
    for machine_id in set(previous) | set(current):
        share_prev = previous.get(machine_id, 0) / total_prev
        share_cur = current.get(machine_id, 0) / total_cur
        overlap += min(share_prev, share_cur)
    return overlap


@dataclass
class ConvergenceDetector:
    """Tracks per-colony assignment distributions across control intervals.

    Call :meth:`record_assignment` for every launch, then
    :meth:`close_interval` at each control-interval tick.
    """

    threshold: float = 0.8
    _current: Dict[Hashable, Dict[int, int]] = field(default_factory=dict)
    _previous: Dict[Hashable, Dict[int, int]] = field(default_factory=dict)
    #: colony -> first time the overlap crossed the threshold
    converged_at: Dict[Hashable, float] = field(default_factory=dict)
    #: colony -> first time an assignment was observed
    first_seen: Dict[Hashable, float] = field(default_factory=dict)
    #: (time, colony, overlap) rows for diagnostics
    history: List[tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")

    def record_assignment(self, colony: Hashable, machine_id: int, now: float) -> None:
        """Note one task launch of ``colony`` onto ``machine_id``."""
        per_machine = self._current.setdefault(colony, {})
        per_machine[machine_id] = per_machine.get(machine_id, 0) + 1
        self.first_seen.setdefault(colony, now)

    def close_interval(self, now: float) -> Dict[Hashable, float]:
        """End the interval; returns the overlap per colony measured."""
        overlaps: Dict[Hashable, float] = {}
        for colony, current in self._current.items():
            previous = self._previous.get(colony)
            if previous:
                overlap = distribution_overlap(previous, current)
                overlaps[colony] = overlap
                self.history.append((now, colony, overlap))
                if overlap >= self.threshold and colony not in self.converged_at:
                    self.converged_at[colony] = now
        # Current distributions become the baseline for the next interval.
        for colony, current in self._current.items():
            self._previous[colony] = current
        self._current = {}
        return overlaps

    def convergence_time(self, colony: Hashable) -> Optional[float]:
        """Seconds from the colony's first assignment to stability."""
        if colony not in self.converged_at:
            return None
        return self.converged_at[colony] - self.first_seen.get(colony, 0.0)

    def mean_convergence_time(self) -> Optional[float]:
        """Mean convergence time over converged colonies (None if none)."""
        times = [self.convergence_time(c) for c in self.converged_at]
        times = [t for t in times if t is not None]
        if not times:
            return None
        return sum(times) / len(times)
