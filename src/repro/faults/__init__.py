"""Fault injection and cluster dynamics.

Declarative :class:`FaultPlan` schedules (crash / recover / join /
decommission / slowdown / flaky_heartbeats) executed deterministically by
:class:`FaultInjector` from the ``"faults"`` RNG stream.  See
``docs/faults.md`` for the plan schema and event semantics.
"""

from .injector import FaultInjector, FaultRecovery
from .plan import FaultEvent, FaultKind, FaultPlan, FaultPlanError

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultRecovery",
]
