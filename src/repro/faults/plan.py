"""Declarative fault plans: typed, validated schedules of cluster events.

A :class:`FaultPlan` is a frozen list of :class:`FaultEvent` records — the
churn a run will experience, fixed before the simulation starts.  Plans are
data, not behaviour: they serialize to canonical JSON, participate in
:class:`~repro.runner.spec.ScenarioSpec` identity (so cached results keyed
by spec hash distinguish faulted from fault-free runs), and are executed by
:class:`~repro.faults.injector.FaultInjector`.

Event kinds
-----------
``crash``
    The machine's TaskTracker dies silently: heartbeats stop, resident
    attempts are lost.  The JobTracker discovers the failure via heartbeat
    expiry and requeues the in-flight tasks.  The box keeps drawing idle
    power (hung, not unplugged).
``recover``
    A previously crashed TaskTracker restarts, re-registers with the
    JobTracker, and resumes heartbeating — empty-handed, as a real
    restarted daemon does.
``join``
    A brand-new machine of catalog type ``model`` is commissioned into the
    cluster: energy accounting starts at the join instant, a TaskTracker
    spins up, and the scheduler is told (E-Ant seeds pheromone paths at the
    prior).  The machine holds no HDFS blocks, like a fresh DataNode before
    the balancer runs.
``decommission``
    The machine is removed from service for good: running attempts are
    killed and requeued immediately, the machine powers off (no further
    joules), and the scheduler prunes its state.
``slowdown``
    Thermal throttling: the machine runs at ``factor`` of rated CPU/IO
    speed and its dynamic power scales by the same factor, for
    ``duration`` seconds (or permanently if omitted).  Phases already in
    flight keep their sampled duration — the same quasi-static
    approximation the network model applies to flows.
``flaky_heartbeats``
    Each heartbeat is independently dropped with ``drop_probability``
    (drawn from the dedicated ``"faults"`` RNG stream) for ``duration``
    seconds; long streaks of drops trip tracker expiry exactly like a
    crash would.
"""

from __future__ import annotations

import enum
import json
import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = ["FaultKind", "FaultEvent", "FaultPlan", "FaultPlanError"]


class FaultPlanError(ValueError):
    """A fault plan (or its JSON form) is malformed."""


class FaultKind(str, enum.Enum):
    """The vocabulary of cluster-dynamics events."""

    CRASH = "crash"
    RECOVER = "recover"
    JOIN = "join"
    DECOMMISSION = "decommission"
    SLOWDOWN = "slowdown"
    FLAKY_HEARTBEATS = "flaky_heartbeats"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Kinds that target an existing machine (``machine_id`` required).
_TARGETED = (
    FaultKind.CRASH,
    FaultKind.RECOVER,
    FaultKind.DECOMMISSION,
    FaultKind.SLOWDOWN,
    FaultKind.FLAKY_HEARTBEATS,
)

_EVENT_FIELDS = ("time", "kind", "machine_id", "model", "factor", "duration", "drop_probability")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled cluster-dynamics event.

    Parameters
    ----------
    time:
        Absolute simulation time (seconds) the event fires.
    kind:
        What happens (see the module docstring for semantics).
    machine_id:
        Target machine — required for every kind except ``join``.
    model:
        Catalog machine type for ``join`` (e.g. ``"T420"``, ``"Atom"``).
    factor:
        ``slowdown`` speed/power multiplier in (0, 1].
    duration:
        ``slowdown`` / ``flaky_heartbeats`` window length in seconds;
        omitted means the condition persists to the end of the run.
    drop_probability:
        ``flaky_heartbeats`` per-heartbeat drop chance in (0, 1].
    """

    time: float
    kind: FaultKind
    machine_id: Optional[int] = None
    model: Optional[str] = None
    factor: Optional[float] = None
    duration: Optional[float] = None
    drop_probability: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            try:
                object.__setattr__(self, "kind", FaultKind(self.kind))
            except ValueError:
                known = ", ".join(k.value for k in FaultKind)
                raise FaultPlanError(
                    f"unknown fault kind {self.kind!r}; known kinds: {known}"
                ) from None
        if not isinstance(self.time, (int, float)) or isinstance(self.time, bool):
            raise FaultPlanError(f"event time must be a number, got {self.time!r}")
        object.__setattr__(self, "time", float(self.time))
        if not math.isfinite(self.time) or self.time < 0:
            raise FaultPlanError(f"event time must be finite and >= 0, got {self.time}")

        kind = self.kind
        if kind in _TARGETED:
            if not isinstance(self.machine_id, int) or isinstance(self.machine_id, bool) or self.machine_id < 0:
                raise FaultPlanError(
                    f"{kind.value} at t={self.time:g} needs a non-negative integer machine_id"
                )
            if self.model is not None:
                raise FaultPlanError(f"{kind.value} does not take a model")
        else:  # JOIN
            if not isinstance(self.model, str) or not self.model.strip():
                raise FaultPlanError(
                    f"join at t={self.time:g} needs a catalog model name"
                )
            if self.machine_id is not None:
                raise FaultPlanError(
                    "join does not take a machine_id (ids are assigned at join time)"
                )

        if kind is FaultKind.SLOWDOWN:
            if (
                not isinstance(self.factor, (int, float))
                or isinstance(self.factor, bool)
                or not 0.0 < float(self.factor) <= 1.0
            ):
                raise FaultPlanError(
                    f"slowdown at t={self.time:g} needs factor in (0, 1]"
                )
            object.__setattr__(self, "factor", float(self.factor))
        elif self.factor is not None:
            raise FaultPlanError(f"{kind.value} does not take a factor")

        if kind is FaultKind.FLAKY_HEARTBEATS:
            if (
                not isinstance(self.drop_probability, (int, float))
                or isinstance(self.drop_probability, bool)
                or not 0.0 < float(self.drop_probability) <= 1.0
            ):
                raise FaultPlanError(
                    f"flaky_heartbeats at t={self.time:g} needs drop_probability in (0, 1]"
                )
            object.__setattr__(self, "drop_probability", float(self.drop_probability))
        elif self.drop_probability is not None:
            raise FaultPlanError(f"{kind.value} does not take a drop_probability")

        if self.duration is not None:
            if kind not in (FaultKind.SLOWDOWN, FaultKind.FLAKY_HEARTBEATS):
                raise FaultPlanError(f"{kind.value} does not take a duration")
            if (
                not isinstance(self.duration, (int, float))
                or isinstance(self.duration, bool)
                or not math.isfinite(float(self.duration))
                or float(self.duration) <= 0
            ):
                raise FaultPlanError(
                    f"{kind.value} at t={self.time:g} needs a positive finite duration"
                )
            object.__setattr__(self, "duration", float(self.duration))

    # ------------------------------------------------------------------ JSON
    def to_json_dict(self) -> Dict[str, Any]:
        """Canonical JSON form: ``kind`` as its string value, no nulls."""
        out: Dict[str, Any] = {"time": self.time, "kind": self.kind.value}
        for name in ("machine_id", "model", "factor", "duration", "drop_probability"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    @classmethod
    def from_json_dict(cls, data: Any) -> "FaultEvent":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault event must be an object, got {type(data).__name__}")
        unknown = sorted(set(data) - set(_EVENT_FIELDS))
        if unknown:
            raise FaultPlanError(
                f"unknown fault event field(s): {', '.join(unknown)}"
            )
        if "time" not in data or "kind" not in data:
            raise FaultPlanError("fault event needs 'time' and 'kind'")
        return cls(**data)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of :class:`FaultEvent` records.

    Events are stored sorted by time (stable, so same-instant events keep
    their authored order).  The plan statically checks that every
    ``recover`` is preceded by a ``crash`` of the same machine, catching
    the most common authoring mistake before any simulation runs.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(
            sorted(self.events, key=lambda e: e.time)
        )
        for event in events:
            if not isinstance(event, FaultEvent):
                raise FaultPlanError(f"plan entries must be FaultEvent, got {event!r}")
        crashed: set = set()
        for event in events:
            if event.kind is FaultKind.CRASH:
                if event.machine_id in crashed:
                    raise FaultPlanError(
                        f"machine {event.machine_id} crashed twice without recovering"
                    )
                crashed.add(event.machine_id)
            elif event.kind is FaultKind.RECOVER:
                if event.machine_id not in crashed:
                    raise FaultPlanError(
                        f"recover at t={event.time:g} targets machine "
                        f"{event.machine_id}, which has no preceding crash"
                    )
                crashed.discard(event.machine_id)
            elif event.kind is FaultKind.DECOMMISSION:
                crashed.discard(event.machine_id)
        object.__setattr__(self, "events", events)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    # ------------------------------------------------------------------ JSON
    def to_json_dict(self) -> Dict[str, Any]:
        return {"events": [event.to_json_dict() for event in self.events]}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_json_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json_dict(cls, data: Any) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault plan must be an object, got {type(data).__name__}")
        unknown = sorted(set(data) - {"events"})
        if unknown:
            raise FaultPlanError(f"unknown fault plan field(s): {', '.join(unknown)}")
        events = data.get("events", [])
        if not isinstance(events, list):
            raise FaultPlanError("'events' must be a list")
        try:
            parsed = [FaultEvent.from_json_dict(entry) for entry in events]
        except TypeError as error:
            raise FaultPlanError(f"malformed fault event: {error}") from None
        return cls(events=tuple(parsed))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"invalid JSON: {error}") from None
        return cls.from_json_dict(data)

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        """Load a plan from a JSON file (CLI ``--faults`` entry point)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            raise FaultPlanError(f"cannot read fault plan {path}: {error}") from None
        return cls.from_json(text)

    # ------------------------------------------------------------- factories
    @classmethod
    def crash_and_rejoin(
        cls, machine_id: int, at: float, rejoin_after: float
    ) -> "FaultPlan":
        """The canonical churn timeline: one crash, one recovery."""
        return cls(
            events=(
                FaultEvent(time=at, kind=FaultKind.CRASH, machine_id=machine_id),
                FaultEvent(
                    time=at + rejoin_after,
                    kind=FaultKind.RECOVER,
                    machine_id=machine_id,
                ),
            )
        )
