"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`.

The injector registers one simulator callback per planned event
(:meth:`attach`), so faults fire deterministically at their scheduled
times regardless of what the workload is doing.  All fault randomness —
today only the flaky-heartbeat drop draws — comes from the dedicated
``"faults"`` RNG stream, so adding or removing fault events never perturbs
the workload's own noise streams (the common-random-numbers discipline the
runner's bit-identity guarantees rest on).

After the run, :meth:`recovery_summary` walks the job inventory and
reduces each disruptive fault to a :class:`FaultRecovery` record: how many
in-flight tasks it killed and how long until the last of them finished on
another machine (the per-fault time-to-recover that lands in
:class:`~repro.runner.record.RunRecord`).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..cluster import Cluster
from ..cluster.catalog import spec_by_name
from ..hadoop.config import HadoopConfig
from ..hadoop.tasktracker import TaskTracker
from ..noise import NO_NOISE, NoiseModel
from ..observability.profiler import NULL_PROFILER
from ..observability.tracer import NULL_TRACER, EventType
from ..simulation import RandomStreams, Simulator
from .plan import FaultEvent, FaultKind, FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..hadoop.jobtracker import JobTracker

__all__ = ["FaultInjector", "FaultRecovery"]


@dataclass(frozen=True)
class FaultRecovery:
    """Post-run summary of one executed fault event (picklable)."""

    time: float
    kind: str
    machine_id: Optional[int]
    #: tasks whose in-flight attempt this fault killed
    tasks_disrupted: int
    #: seconds from the fault until the last disrupted task completed
    #: elsewhere (0.0 when nothing was disrupted)
    recovery_seconds: float


class FaultInjector:
    """Drives a :class:`FaultPlan` against a live simulation stack.

    Parameters
    ----------
    plan:
        The schedule to execute.
    sim, cluster, jobtracker:
        The running stack the faults act on.
    config, noise:
        Framework config and noise model for TaskTrackers spawned by
        ``join`` events (the same objects the engine built the original
        trackers with).
    streams:
        The run's :class:`~repro.simulation.RandomStreams`; the injector
        takes its ``"faults"`` stream and derives ``tt-<id>`` streams for
        joined machines, mirroring the engine's convention.
    trackers:
        The TaskTrackers built at cluster construction (joined machines
        are added as their events fire).
    tracer:
        Trace sink for ``fault.injected`` events.
    profiler:
        Phase-profiling hook; fault execution is charged to the
        ``"faults"`` leaf (the no-op default costs one check per event).
    """

    def __init__(
        self,
        plan: FaultPlan,
        sim: Simulator,
        cluster: Cluster,
        jobtracker: "JobTracker",
        config: HadoopConfig,
        streams: RandomStreams,
        trackers: Sequence[TaskTracker],
        noise: NoiseModel = NO_NOISE,
        tracer=NULL_TRACER,
        profiler=NULL_PROFILER,
    ) -> None:
        self.plan = plan
        self.sim = sim
        self.cluster = cluster
        self.jobtracker = jobtracker
        self.config = config
        self.noise = noise
        self.streams = streams
        self.tracer = tracer
        self.profiler = profiler
        self.rng = streams.stream("faults")
        self.trackers: Dict[int, TaskTracker] = {
            tracker.machine.machine_id: tracker for tracker in trackers
        }
        #: (event, tasks_disrupted) for every fault that has fired
        self.executed: List[tuple] = []
        #: machine ids commissioned by join events, in firing order
        self.joined_machine_ids: List[int] = []

    # -------------------------------------------------------------- lifecycle
    def attach(self) -> None:
        """Register one simulator callback per planned event."""
        for event in self.plan.events:
            self.sim.call_at(event.time, lambda e=event: self._execute(e))

    # -------------------------------------------------------------- execution
    def _tracker(self, event: FaultEvent) -> TaskTracker:
        try:
            return self.trackers[event.machine_id]
        except KeyError:
            raise RuntimeError(
                f"{event.kind.value} at t={event.time:g} targets machine "
                f"{event.machine_id}, which does not exist"
            ) from None

    def _execute(self, event: FaultEvent) -> None:
        profiler = self.profiler
        if profiler.enabled:
            started = perf_counter()
            self._execute_inner(event)
            profiler.add("faults", perf_counter() - started)
        else:
            self._execute_inner(event)

    def _execute_inner(self, event: FaultEvent) -> None:
        disrupted = 0
        if event.kind is FaultKind.CRASH:
            tracker = self._tracker(event)
            disrupted = tracker.running_maps + tracker.running_reduces
            tracker.crash()
        elif event.kind is FaultKind.RECOVER:
            self._tracker(event).recover()
        elif event.kind is FaultKind.JOIN:
            self._join(event)
        elif event.kind is FaultKind.DECOMMISSION:
            disrupted = self._decommission(event)
        elif event.kind is FaultKind.SLOWDOWN:
            self._slowdown(event)
        elif event.kind is FaultKind.FLAKY_HEARTBEATS:
            self._flaky(event)
        self.executed.append((event, disrupted))
        if self.tracer.enabled:
            self.tracer.emit(
                EventType.FAULT_INJECTED,
                self.sim.now,
                kind=event.kind.value,
                machine_id=(
                    self.joined_machine_ids[-1]
                    if event.kind is FaultKind.JOIN
                    else event.machine_id
                ),
                model=event.model,
                factor=event.factor,
                duration=event.duration,
                drop_probability=event.drop_probability,
                tasks_disrupted=disrupted,
            )

    def _join(self, event: FaultEvent) -> None:
        spec = spec_by_name(event.model or "")
        machine = self.cluster.add_machine(spec)
        # ``add_machine`` builds with the no-op default; joined machines
        # must profile their energy windows like the original fleet.
        machine.profiler = self.profiler
        tracker = TaskTracker(
            self.sim,
            machine,
            self.config,
            noise=self.noise,
            rng=self.streams.stream(f"tt-{machine.machine_id}"),
        )
        self.trackers[machine.machine_id] = tracker
        tracker.start(self.jobtracker)
        self.jobtracker.scheduler.on_machine_added(machine)
        self.joined_machine_ids.append(machine.machine_id)

    def _decommission(self, event: FaultEvent) -> int:
        tracker = self._tracker(event)
        machine = tracker.machine
        disrupted = tracker.running_maps + tracker.running_reduces
        # Graceful removal: stop the daemon, requeue its work now (no
        # expiry wait), power the box off, and tell the scheduler.
        tracker.crash()
        self.jobtracker.expire_tracker(machine.machine_id)
        machine.decommission()
        self.jobtracker.scheduler.on_machine_removed(machine)
        return disrupted

    def _slowdown(self, event: FaultEvent) -> None:
        machine = self.cluster.machine(self._tracker(event).machine.machine_id)
        assert event.factor is not None
        machine.set_speed_scale(event.factor)
        if event.duration is not None:
            self.sim.call_at(
                event.time + event.duration,
                lambda m=machine: self._restore_speed(m),
            )

    @staticmethod
    def _restore_speed(machine) -> None:
        if not machine.decommissioned:
            machine.set_speed_scale(1.0)

    def _flaky(self, event: FaultEvent) -> None:
        tracker = self._tracker(event)
        assert event.drop_probability is not None
        tracker.set_flaky(event.drop_probability, self.rng)
        if event.duration is not None:
            self.sim.call_at(
                event.time + event.duration,
                lambda t=tracker: t.set_flaky(0.0, None),
            )

    # ---------------------------------------------------------------- summary
    def recovery_summary(self) -> List[FaultRecovery]:
        """Reduce each executed fault to its :class:`FaultRecovery` record.

        A task counts as disrupted by a fault if one of its attempts was
        killed on the fault's machine while running across the fault
        instant; its recovery point is the finish time of its eventual
        successful attempt.  Call after the simulation has drained.
        """
        records: List[FaultRecovery] = []
        for event, disrupted in self.executed:
            recovery_seconds = 0.0
            if event.kind in (FaultKind.CRASH, FaultKind.DECOMMISSION) and disrupted:
                last_finish = event.time
                for job in self.jobtracker.jobs.values():
                    for task in job.maps + job.reduces:
                        hit = any(
                            attempt.killed
                            and attempt.machine_id == event.machine_id
                            and attempt.start_time <= event.time
                            and (attempt.finish_time or event.time) >= event.time
                            for attempt in task.attempts
                        )
                        if not hit:
                            continue
                        for attempt in task.attempts:
                            if attempt.succeeded and attempt.finish_time is not None:
                                last_finish = max(last_finish, attempt.finish_time)
                recovery_seconds = last_finish - event.time
            records.append(
                FaultRecovery(
                    time=event.time,
                    kind=event.kind.value,
                    machine_id=(
                        None if event.kind is FaultKind.JOIN else event.machine_id
                    ),
                    tasks_disrupted=disrupted,
                    recovery_seconds=recovery_seconds,
                )
            )
        return records
