"""HDFS block placement and data locality.

Only the properties the schedulers interact with are modelled: which
machines hold a replica of each map task's input block (drives node-local
vs remote reads) and the capacity-weighted random placement Hadoop's
balancer converges to.  Placement supports a *locality bias* so the Fig. 6
experiment can synthesize job inputs with a controlled fraction of blocks
local to the schedulable machines.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cluster import Cluster

__all__ = ["BlockPlacer"]


class BlockPlacer:
    """Chooses replica hosts for the input blocks of submitted jobs.

    Parameters
    ----------
    cluster:
        The cluster whose machines can hold replicas.
    replication:
        Replicas per block (distinct machines; capped at cluster size).
    rng:
        RNG for placement draws (stream ``"hdfs"`` by convention).
    """

    def __init__(self, cluster: Cluster, replication: int, rng: np.random.Generator) -> None:
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.cluster = cluster
        self.replication = min(replication, len(cluster))
        self.rng = rng
        # Hadoop spreads blocks roughly uniformly across DataNodes of equal
        # disk size (all Table I machines have 1 TB disks).
        self._machine_ids = np.array(cluster.machine_ids)

    def place_block(self) -> Tuple[int, ...]:
        """Replica host ids for one block (distinct machines)."""
        chosen = self.rng.choice(self._machine_ids, size=self.replication, replace=False)
        return tuple(int(m) for m in chosen)

    def place_job_blocks(self, num_blocks: int) -> List[Tuple[int, ...]]:
        """Replica host tuples for all blocks of one job."""
        if num_blocks < 0:
            raise ValueError("block count must be non-negative")
        return [self.place_block() for _ in range(num_blocks)]

    def place_with_locality(
        self,
        num_blocks: int,
        local_fraction: float,
        local_hosts: Optional[Sequence[int]] = None,
    ) -> List[Tuple[int, ...]]:
        """Placement where only ``local_fraction`` of blocks are local.

        Used by the Fig. 6 experiment: blocks outside the local fraction
        get an empty replica tuple, forcing every read of them to be
        remote regardless of where the task runs.  Blocks inside the
        fraction are placed normally (optionally restricted to
        ``local_hosts``).
        """
        if not 0.0 <= local_fraction <= 1.0:
            raise ValueError("local fraction must be in [0, 1]")
        hosts = (
            np.array(sorted(local_hosts), dtype=int)
            if local_hosts is not None
            else self._machine_ids
        )
        if local_hosts is not None and len(hosts) == 0:
            raise ValueError("local_hosts must not be empty")
        placements: List[Tuple[int, ...]] = []
        n_local = int(round(num_blocks * local_fraction))
        for index in range(num_blocks):
            if index < n_local:
                k = min(self.replication, len(hosts))
                chosen = self.rng.choice(hosts, size=k, replace=False)
                placements.append(tuple(int(m) for m in chosen))
            else:
                placements.append(())
        # Shuffle so local blocks are not clustered at the job's start.
        self.rng.shuffle(placements)
        return placements

    def pick_remote_source(self, replica_hosts: Tuple[int, ...], reader_id: int) -> int:
        """Machine a remote read streams from (any replica but the reader).

        With an empty replica tuple (synthetic off-cluster data, as in the
        locality experiment), the read streams from a uniformly random
        other machine, modelling an off-rack fetch.
        """
        candidates = [h for h in replica_hosts if h != reader_id]
        if not candidates:
            ids = self.cluster.machine_index().ids
            others = ids[ids != reader_id]
            if len(others) == 0:  # single-machine cluster: read is effectively local
                return reader_id
            return int(self.rng.choice(others))
        return int(self.rng.choice(candidates))
