"""TaskTrackers: per-machine slot management and task execution.

Each machine runs one :class:`TaskTracker` process that heartbeats the
JobTracker every ``heartbeat_interval`` seconds (Section V: 3 s), offering
its free map/reduce slots.  Tasks handed back are executed as simulation
processes that move through explicit phases (IO / CPU for maps; shuffle /
sort / reduce for reduces), register CPU and IO load on the machine (which
drives the ground-truth energy integration), and on completion ship a
:class:`~repro.hadoop.job.TaskReport` with noisy per-heartbeat CPU samples
— exactly the feedback E-Ant's task analyzer consumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, NamedTuple, Optional

import numpy as np

from ..cluster import Machine
from ..energy.model import samples_from_phases
from ..noise import NO_NOISE, NoiseModel
from ..observability.tracer import NULL_TRACER, EventType
from ..simulation import Interrupt, Process, Simulator
from .config import HadoopConfig
from .job import Task, TaskAttempt, TaskKind

if TYPE_CHECKING:  # pragma: no cover
    from .jobtracker import JobTracker

__all__ = ["TrackerStatus", "TaskTracker"]


class TrackerStatus(NamedTuple):
    """Snapshot of a TaskTracker included in its heartbeat.

    A NamedTuple rather than a frozen dataclass: one is built on every
    heartbeat of every tracker, and at thousand-node fleets the
    ``object.__setattr__`` dance frozen dataclasses pay per field showed
    up in the heartbeat profile.
    """

    machine_id: int
    free_map_slots: int
    free_reduce_slots: int
    running_maps: int
    running_reduces: int


class TaskTracker:
    """The per-machine Hadoop worker daemon.

    Parameters
    ----------
    sim, machine, config:
        Simulation clock, the machine this tracker manages, and framework
        configuration.
    noise:
        System-noise model applied to this machine's task executions.
    rng:
        RNG stream for this tracker's noise draws.
    """

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        config: HadoopConfig,
        noise: NoiseModel = NO_NOISE,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.config = config
        self.noise = noise
        self.rng = rng if rng is not None else np.random.default_rng(machine.machine_id)
        self.jobtracker: Optional["JobTracker"] = None
        self.tracer = NULL_TRACER  # inherited from the JobTracker at start()
        self.running_maps = 0
        self.running_reduces = 0
        self._attempt_processes: Dict[str, Process] = {}
        self._heartbeat_process: Optional[Process] = None
        self._crashed = False
        #: probability a heartbeat is silently dropped (fault injection);
        #: draws come from the injector's dedicated "faults" stream so the
        #: tracker's own noise draws stay untouched
        self.heartbeat_drop_probability = 0.0
        self._flaky_rng: Optional[np.random.Generator] = None
        #: Total tasks this tracker has completed, by kind (metrics).
        self.completed_counts: Dict[TaskKind, int] = {TaskKind.MAP: 0, TaskKind.REDUCE: 0}

    # -------------------------------------------------------------- lifecycle
    def start(self, jobtracker: "JobTracker") -> None:
        """Register with the JobTracker and begin heartbeating."""
        self.jobtracker = jobtracker
        self.tracer = jobtracker.tracer
        jobtracker.register_tracker(self)
        self._heartbeat_process = self.sim.process(
            self._heartbeat_loop(), name=f"tt-{self.machine.hostname}"
        )

    def _heartbeat_loop(self) -> Generator:
        assert self.jobtracker is not None
        # Desynchronize trackers slightly, as real daemons are.
        yield self.sim.timeout(float(self.rng.uniform(0, self.config.heartbeat_interval)))
        while not self.jobtracker.is_shutdown and not self._crashed:
            if (
                self.heartbeat_drop_probability > 0.0
                and self._flaky_rng is not None
                and float(self._flaky_rng.random()) < self.heartbeat_drop_probability
            ):
                # Flaky NIC/daemon: the heartbeat is lost in transit.  The
                # JobTracker sees nothing — long enough streaks trip expiry.
                assignments: List[Task] = []
            else:
                assignments = self.jobtracker.heartbeat(self)
            for task in assignments:
                self.launch(task)
            yield self.sim.timeout(self.config.heartbeat_interval)

    def set_flaky(
        self, drop_probability: float, rng: Optional[np.random.Generator]
    ) -> None:
        """Start (or stop, with 0.0) dropping heartbeats with the given
        probability, drawing from ``rng`` (the injector's faults stream)."""
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")
        self.heartbeat_drop_probability = drop_probability
        self._flaky_rng = rng

    # ------------------------------------------------------------------ slots
    @property
    def free_map_slots(self) -> int:
        return self.machine.spec.map_slots - self.running_maps

    @property
    def free_reduce_slots(self) -> int:
        return self.machine.spec.reduce_slots - self.running_reduces

    def status(self) -> TrackerStatus:
        """Current heartbeat snapshot."""
        return TrackerStatus(
            machine_id=self.machine.machine_id,
            free_map_slots=self.free_map_slots,
            free_reduce_slots=self.free_reduce_slots,
            running_maps=self.running_maps,
            running_reduces=self.running_reduces,
        )

    # -------------------------------------------------------------- execution
    def launch(self, task: Task) -> TaskAttempt:
        """Start executing ``task`` in a slot (the scheduler already claimed
        the task from its job's pending queue)."""
        if task.is_map:
            if self.free_map_slots <= 0:
                raise RuntimeError(f"{self.machine.hostname}: no free map slot")
            self.running_maps += 1
        else:
            if self.free_reduce_slots <= 0:
                raise RuntimeError(f"{self.machine.hostname}: no free reduce slot")
            self.running_reduces += 1
        attempt = task.new_attempt(self.machine.machine_id, self.sim.now)
        if self.tracer.enabled:
            self.tracer.emit(
                EventType.TASK_LAUNCHED,
                self.sim.now,
                task_id=task.task_id,
                attempt_id=attempt.attempt_id,
                job_id=task.job.job_id,
                kind=task.kind.value,
                machine_id=self.machine.machine_id,
                attempt_number=attempt.attempt_number,
            )
        body = self._run_map(attempt) if task.is_map else self._run_reduce(attempt)
        process = self.sim.process(body, name=attempt.attempt_id)
        self._attempt_processes[attempt.attempt_id] = process
        return attempt

    def kill_attempt(self, attempt: TaskAttempt) -> None:
        """Interrupt a running attempt (speculative-execution loser)."""
        process = self._attempt_processes.get(attempt.attempt_id)
        if process is not None:
            process.interrupt("killed")

    @property
    def is_crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Fail the node: heartbeats stop, resident work dies silently.

        The JobTracker learns of the failure only through missed
        heartbeats (``HadoopConfig.tracker_expiry``), exactly as in
        Hadoop; the machine keeps drawing its idle power (a hung box is
        not an unplugged box).
        """
        if self._crashed:
            return
        self._crashed = True
        if self._heartbeat_process is not None:
            self._heartbeat_process.interrupt("crash")
        for process in list(self._attempt_processes.values()):
            process.interrupt("crash")

    def recover(self) -> None:
        """Rejoin after a crash: re-register and resume heartbeats.

        The daemon comes back empty-handed — every attempt that was
        resident at crash time died with the process and its task must be
        re-executed elsewhere (the JobTracker requeues them on re-register
        if heartbeat expiry has not already done so).  Mirrors restarting
        the TaskTracker daemon on a rebooted node.
        """
        if not self._crashed:
            raise RuntimeError(f"{self.machine.hostname} is not crashed")
        assert self.jobtracker is not None
        self._crashed = False
        self.jobtracker.tracker_recovered(self)
        self._heartbeat_process = self.sim.process(
            self._heartbeat_loop(), name=f"tt-{self.machine.hostname}"
        )

    def _finish_attempt(self, attempt: TaskAttempt, succeeded: bool) -> None:
        """Release the slot and report the outcome."""
        task = attempt.task
        if task.is_map:
            self.running_maps -= 1
        else:
            self.running_reduces -= 1
        attempt.finish_time = self.sim.now
        attempt.succeeded = succeeded
        self._attempt_processes.pop(attempt.attempt_id, None)
        assert self.jobtracker is not None
        if self.tracer.enabled:
            self.tracer.emit(
                EventType.TASK_COMPLETED if succeeded else EventType.TASK_KILLED,
                self.sim.now,
                task_id=task.task_id,
                attempt_id=attempt.attempt_id,
                job_id=task.job.job_id,
                kind=task.kind.value,
                machine_id=self.machine.machine_id,
                duration=attempt.duration,
                local=attempt.local,
                avg_utilization=attempt.avg_utilization,
                phases=dict(attempt.phases),
                crashed=self._crashed,
            )
        if self._crashed:
            # A crashed node reports nothing; the JobTracker discovers the
            # loss via heartbeat expiry and requeues the tasks itself.
            attempt.killed = True
            return
        if succeeded:
            self.completed_counts[task.kind] += 1
            self.jobtracker.task_finished(self, attempt)
        else:
            self.jobtracker.task_killed(self, attempt)

    # ---------------------------------------------------------- map execution
    def _run_map(self, attempt: TaskAttempt) -> Generator:
        task = attempt.task
        machine = self.machine
        spec = machine.spec
        profile = task.job.profile
        blocks = task.input_mb / self.config.block_mb
        local = machine.machine_id in task.preferred_hosts
        attempt.local = local

        io_work = profile.map_io_seconds * blocks / machine.effective_io_speed
        network_time = 0.0
        flow = None
        if not local:
            source = self.jobtracker.placer.pick_remote_source(
                task.preferred_hosts, machine.machine_id
            )
            network = self.jobtracker.cluster.network
            network_time = network.transfer_time(source, machine.machine_id, task.input_mb)
            io_work *= self.config.remote_read_penalty
            flow = (source, machine.machine_id)
            network.begin_flow(*flow)

        io_time = (
            (io_work + network_time)
            * machine.io_contention()
            * self.noise.duration_factor(self.rng)
        )
        cpu_time = (
            profile.map_cpu_seconds
            * blocks
            / machine.effective_cpu_speed
            * machine.cpu_contention(profile.map_cores)
            * self.noise.duration_factor(self.rng)
        )

        io_util = min(self.config.io_phase_cores, spec.cores) / spec.cores
        cpu_util = min(profile.map_cores, spec.cores) / spec.cores
        try:
            # Phase 1: input read (+ remote fetch) and spill.
            machine.io_begin()
            machine.add_cpu_load(self.config.io_phase_cores)
            phase_started = self.sim.now
            try:
                yield self.sim.timeout(io_time)
            finally:
                machine.io_end()
                machine.remove_cpu_load(self.config.io_phase_cores)
                attempt.core_seconds += (
                    self.sim.now - phase_started
                ) * self.config.io_phase_cores
                if flow is not None:
                    self.jobtracker.cluster.network.end_flow(*flow)
                    flow = None
            attempt.phases["io"] = io_time

            # Phase 2: the map function itself.
            machine.add_cpu_load(profile.map_cores)
            phase_started = self.sim.now
            try:
                yield self.sim.timeout(cpu_time)
            finally:
                machine.remove_cpu_load(profile.map_cores)
                attempt.core_seconds += (
                    self.sim.now - phase_started
                ) * profile.map_cores
            attempt.phases["cpu"] = cpu_time
        except Interrupt:
            self._finish_attempt(attempt, succeeded=False)
            return

        total = io_time + cpu_time
        attempt.avg_utilization = (
            (io_util * io_time + cpu_util * cpu_time) / total if total > 0 else 0.0
        )
        attempt.samples = samples_from_phases(
            [(io_time, io_util), (cpu_time, cpu_util)],
            delta_t=self.config.heartbeat_interval,
            noise_factors=lambda n: self.noise.utilization_factors(self.rng, n),
        )
        self._finish_attempt(attempt, succeeded=True)

    # ------------------------------------------------------- reduce execution
    def _run_reduce(self, attempt: TaskAttempt) -> Generator:
        task = attempt.task
        job = task.job
        machine = self.machine
        spec = machine.spec
        profile = job.profile
        shuffle_mb = task.input_mb

        network = self.jobtracker.cluster.network
        # Shuffle streams from many mappers; model the aggregate as one flow
        # bottlenecked at this reducer's NIC.
        bandwidth = network.nic_mb_per_s / (network.flows_at(machine.machine_id) + 1)
        transfer_all = shuffle_mb / bandwidth if shuffle_mb > 0 else 0.0
        flow = (machine.machine_id, machine.machine_id)
        network.begin_flow(*flow)

        io_util = min(self.config.io_phase_cores, spec.cores) / spec.cores
        shuffle_started = self.sim.now
        try:
            machine.io_begin()
            machine.add_cpu_load(self.config.io_phase_cores)
            try:
                # Shuffle cannot complete before the job's last map finishes:
                # copy what exists, then drain the final wave's output.
                if not job.maps_done:
                    yield job.maps_done_event
                elapsed = self.sim.now - shuffle_started
                residual = max(transfer_all - elapsed, 0.1 * transfer_all)
                residual *= self.noise.duration_factor(self.rng)
                yield self.sim.timeout(residual)
            finally:
                machine.io_end()
                machine.remove_cpu_load(self.config.io_phase_cores)
                attempt.core_seconds += (
                    self.sim.now - shuffle_started
                ) * self.config.io_phase_cores
                network.end_flow(*flow)
            attempt.phases["shuffle"] = self.sim.now - shuffle_started

            # Sort/merge (IO-bound).
            sort_time = (
                profile.reduce_io_per_mb
                * shuffle_mb
                / machine.effective_io_speed
                * machine.io_contention()
                * self.noise.duration_factor(self.rng)
            )
            machine.io_begin()
            machine.add_cpu_load(self.config.io_phase_cores)
            phase_started = self.sim.now
            try:
                yield self.sim.timeout(sort_time)
            finally:
                machine.io_end()
                machine.remove_cpu_load(self.config.io_phase_cores)
                attempt.core_seconds += (
                    self.sim.now - phase_started
                ) * self.config.io_phase_cores
            attempt.phases["sort"] = sort_time

            # The reduce function (CPU-bound).
            reduce_time = (
                profile.reduce_cpu_per_mb
                * shuffle_mb
                / machine.effective_cpu_speed
                * machine.cpu_contention(profile.reduce_cores)
                * self.noise.duration_factor(self.rng)
            )
            machine.add_cpu_load(profile.reduce_cores)
            phase_started = self.sim.now
            try:
                yield self.sim.timeout(reduce_time)
            finally:
                machine.remove_cpu_load(profile.reduce_cores)
                attempt.core_seconds += (
                    self.sim.now - phase_started
                ) * profile.reduce_cores
            attempt.phases["reduce"] = reduce_time
        except Interrupt:
            self._finish_attempt(attempt, succeeded=False)
            return

        cpu_util = min(profile.reduce_cores, spec.cores) / spec.cores
        shuffle_time = attempt.phases["shuffle"]
        total = shuffle_time + sort_time + reduce_time
        attempt.avg_utilization = (
            (io_util * (shuffle_time + sort_time) + cpu_util * reduce_time) / total
            if total > 0
            else 0.0
        )
        attempt.samples = samples_from_phases(
            [(shuffle_time, io_util), (sort_time, io_util), (reduce_time, cpu_util)],
            delta_t=self.config.heartbeat_interval,
            noise_factors=lambda n: self.noise.utilization_factors(self.rng, n),
        )
        self._finish_attempt(attempt, succeeded=True)
