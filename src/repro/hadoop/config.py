"""Hadoop cluster configuration (Section V-B / Appendix B settings)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HadoopConfig"]


@dataclass(frozen=True)
class HadoopConfig:
    """Framework-level knobs of the simulated Hadoop 1.x deployment.

    Defaults follow Section V-B and Hadoop 1.2.1 conventions.

    Parameters
    ----------
    heartbeat_interval:
        TaskTracker heartbeat period (s); also the Δt of Eq. 2 sampling.
    block_mb:
        HDFS block size (Section V-B: 64 MB).
    replication:
        HDFS replication factor.
    control_interval:
        E-Ant's re-optimization period (Section V-B: 5 minutes).
    reduce_slowstart:
        Fraction of a job's maps that must complete before its reduces
        become schedulable.  Hadoop ships 0.05, but with two reduce slots
        per node early reduces squat on the scarce reduce pool while
        waiting for the map barrier; the Cloudera tuning guidance the
        paper follows (Section V-C) recommends a high value for
        shuffle-heavy mixes, so 0.95 is the default here (shuffle volumes
        transfer in seconds on the simulated GigE fabric, so late launch
        costs almost no overlap).
    remote_read_penalty:
        Extra IO-time factor for non-local map input on top of the network
        transfer itself (seek/stream overhead of remote reads).
    io_phase_cores:
        CPU demand (cores) of a task while in an IO-bound phase.
    speculative_execution:
        Enables LATE-style speculative attempts (extension; off in the
        paper's E-Ant runs).
    speculative_slowness_threshold:
        A running attempt is speculatable once its progress rate falls
        below this fraction of the job's mean attempt rate.
    tracker_expiry:
        Seconds without a heartbeat after which the JobTracker declares a
        TaskTracker dead and requeues its running tasks (Hadoop's
        mapred.tasktracker.expiry.interval, scaled to the simulation's
        3 s heartbeats).  0 disables expiry.
    """

    heartbeat_interval: float = 3.0
    block_mb: float = 64.0
    replication: int = 3
    control_interval: float = 300.0
    reduce_slowstart: float = 0.95
    remote_read_penalty: float = 1.3
    io_phase_cores: float = 0.10
    tracker_expiry: float = 30.0
    speculative_execution: bool = False
    speculative_slowness_threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if self.block_mb <= 0:
            raise ValueError("block size must be positive")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")
        if self.control_interval <= 0:
            raise ValueError("control interval must be positive")
        if not 0.0 <= self.reduce_slowstart <= 1.0:
            raise ValueError("reduce slowstart must be in [0, 1]")
        if self.remote_read_penalty < 1.0:
            raise ValueError("remote read penalty must be >= 1")
        if self.io_phase_cores < 0:
            raise ValueError("io phase core demand must be non-negative")
        if self.tracker_expiry < 0:
            raise ValueError("tracker expiry must be non-negative")
