"""Hadoop 1.x MapReduce substrate: jobs, trackers, HDFS, heartbeats."""

from .config import HadoopConfig
from .hdfs import BlockPlacer
from .job import Job, Task, TaskAttempt, TaskKind, TaskReport, TaskState
from .jobtracker import JobTracker
from .tasktracker import TaskTracker, TrackerStatus

__all__ = [
    "HadoopConfig",
    "BlockPlacer",
    "Job",
    "Task",
    "TaskAttempt",
    "TaskKind",
    "TaskState",
    "TaskReport",
    "JobTracker",
    "TaskTracker",
    "TrackerStatus",
]
