"""Runtime job/task entities of the simulated Hadoop framework.

A submitted :class:`~repro.workloads.profiles.JobSpec` becomes a live
:class:`Job` holding :class:`Task` objects (one per map block plus the
reduces).  Each execution of a task on a machine is a :class:`TaskAttempt`;
its completion produces a :class:`TaskReport` — the exact record a modified
TaskTracker ships to the JobTracker in the paper's implementation
(Section V-A: ``taskEner`` / ``TaskReport`` tagged with AttemptTaskID).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..energy.model import UtilizationSample
from ..simulation import Event, Simulator
from ..workloads import JobSpec, WorkloadProfile

__all__ = ["TaskKind", "TaskState", "Task", "TaskAttempt", "TaskReport", "Job"]


class TaskKind(enum.Enum):
    """Map or reduce."""

    MAP = "map"
    REDUCE = "reduce"


class TaskState(enum.Enum):
    """Lifecycle of a task (not an attempt)."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"


@dataclass(eq=False)
class Task:
    """One logical map or reduce task of a job.

    Identity equality (``eq=False``): every task is a unique live object,
    and the pending-queue ``list.remove`` calls in :class:`Job` must
    short-circuit on identity rather than field-compare O(queue) tasks —
    at datacenter scale the generated ``__eq__`` dominated the whole
    simulation.
    """

    job: "Job"
    index: int
    kind: TaskKind
    input_mb: float
    #: Machines holding a replica of this map's input block (empty for reduces).
    preferred_hosts: Tuple[int, ...] = ()
    state: TaskState = TaskState.PENDING
    attempts: List["TaskAttempt"] = field(default_factory=list)
    #: Incremented each time the task re-enters a pending queue, so stale
    #: queue entries from before a requeue can be recognized and skipped.
    _pending_seq: int = field(default=0, repr=False)
    _task_id: Optional[str] = field(default=None, repr=False)

    @property
    def task_id(self) -> str:
        """Stable id, e.g. ``j3-m-0017`` (computed once, then cached)."""
        tid = self._task_id
        if tid is None:
            letter = "m" if self.kind is TaskKind.MAP else "r"
            self._task_id = tid = f"j{self.job.job_id}-{letter}-{self.index:04d}"
        return tid

    @property
    def is_map(self) -> bool:
        return self.kind is TaskKind.MAP

    def new_attempt(self, machine_id: int, start_time: float) -> "TaskAttempt":
        """Register a new execution attempt on ``machine_id``."""
        attempt = TaskAttempt(
            task=self,
            attempt_number=len(self.attempts),
            machine_id=machine_id,
            start_time=start_time,
        )
        self.attempts.append(attempt)
        return attempt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Task {self.task_id} {self.state.value}>"


@dataclass
class TaskAttempt:
    """One execution of a task on one machine."""

    task: Task
    attempt_number: int
    machine_id: int
    start_time: float
    finish_time: Optional[float] = None
    #: Wall-clock seconds per phase, e.g. {"io": 4.1, "cpu": 17.5} for maps
    #: or {"shuffle": 30.2, "sort": 3.0, "reduce": 12.8} for reduces.
    phases: Dict[str, float] = field(default_factory=dict)
    #: True mean machine-fraction CPU utilization of the attempt's process.
    avg_utilization: float = 0.0
    #: Noisy per-heartbeat samples, as the TaskTracker would report them.
    samples: List[UtilizationSample] = field(default_factory=list)
    #: Whether the map input was read node-locally.
    local: bool = True
    succeeded: bool = False
    killed: bool = False
    #: Core-seconds of CPU demand this attempt actually exerted (partial
    #: phases included) — the basis of wasted-energy accounting for
    #: attempts that die before completing.
    core_seconds: float = 0.0

    @property
    def attempt_id(self) -> str:
        """Hadoop-style attempt id, e.g. ``attempt_j3-m-0017_0``."""
        return f"attempt_{self.task.task_id}_{self.attempt_number}"

    @property
    def duration(self) -> float:
        """Wall-clock runtime (finish - start); requires a finish time."""
        if self.finish_time is None:
            raise ValueError(f"{self.attempt_id} has not finished")
        return self.finish_time - self.start_time

    def to_report(self) -> "TaskReport":
        """Flatten into the record shipped to the JobTracker."""
        job = self.task.job
        return TaskReport(
            job_id=job.job_id,
            job_name=job.name,
            application=job.profile.name,
            pool=job.spec.pool,
            resource_signature=job.profile.resource_signature(),
            task_id=self.task.task_id,
            attempt_id=self.attempt_id,
            kind=self.task.kind,
            machine_id=self.machine_id,
            start_time=self.start_time,
            finish_time=self.finish_time if self.finish_time is not None else self.start_time,
            avg_utilization=self.avg_utilization,
            samples=tuple(self.samples),
            input_mb=self.task.input_mb,
            local=self.local,
            phases=dict(self.phases),
        )


@dataclass(frozen=True)
class TaskReport:
    """Completion record of one task attempt (Section V-A's ``TaskReport``).

    This is the only task-level information E-Ant's task analyzer sees:
    identity, placement, timing, and the noisy CPU-utilization samples from
    which Eq. 2 estimates energy.
    """

    job_id: int
    job_name: str
    pool: str
    resource_signature: str
    task_id: str
    attempt_id: str
    kind: TaskKind
    machine_id: int
    start_time: float
    finish_time: float
    avg_utilization: float
    samples: Tuple[UtilizationSample, ...]
    input_mb: float
    local: bool
    phases: Dict[str, float]
    #: PUMA application name (e.g. ``"terasort"``), carried explicitly so
    #: consumers need not parse it back out of ``job_name``.  Defaults empty
    #: for hand-built reports; real reports always set it.
    application: str = ""

    @property
    def duration(self) -> float:
        """Wall-clock runtime of the attempt."""
        return self.finish_time - self.start_time


class Job:
    """A live job: task inventory, progress counters, completion events.

    Created by the JobTracker at submission time; exposes the pending-task
    queues every scheduler draws from and the events the reduce barrier and
    drivers wait on.
    """

    def __init__(
        self,
        sim: Simulator,
        job_id: int,
        spec: JobSpec,
        block_mb: float,
        map_input_sizes: Optional[Sequence[float]] = None,
        replica_hosts: Optional[Sequence[Tuple[int, ...]]] = None,
    ) -> None:
        self.sim = sim
        self.job_id = job_id
        self.spec = spec
        self.submit_time = spec.submit_time
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None

        num_maps = spec.num_maps(block_mb)
        if map_input_sizes is None:
            map_input_sizes = [block_mb] * num_maps
        if len(map_input_sizes) != num_maps:
            raise ValueError("one input size per map task required")
        if replica_hosts is None:
            replica_hosts = [()] * num_maps
        if len(replica_hosts) != num_maps:
            raise ValueError("one replica tuple per map task required")

        self.maps: List[Task] = [
            Task(
                job=self,
                index=i,
                kind=TaskKind.MAP,
                input_mb=float(map_input_sizes[i]),
                preferred_hosts=tuple(replica_hosts[i]),
            )
            for i in range(num_maps)
        ]
        shuffle_per_reduce = spec.shuffle_mb_per_reduce()
        self.reduces: List[Task] = [
            Task(job=self, index=i, kind=TaskKind.REDUCE, input_mb=shuffle_per_reduce)
            for i in range(spec.num_reduces)
        ]

        # Pending queues (schedulers pop from these via take_*).  Entries
        # are ``(seq, task)``; an entry is live only while ``seq`` matches
        # the task's current ``_pending_seq`` and the task is still
        # PENDING.  Dispatch never removes from the middle (an O(queue)
        # scan that dominated datacenter-scale runs) — stale entries are
        # skipped lazily at the head, and explicit counters keep the
        # pending counts exact.
        self._pending_maps: Deque[Tuple[int, Task]] = deque(
            (0, task) for task in self.maps
        )
        self._pending_reduces: Deque[Tuple[int, Task]] = deque(
            (0, task) for task in self.reduces
        )
        self._num_pending_maps = len(self.maps)
        self._num_pending_reduces = len(self.reduces)
        self._maps_by_host: Dict[int, List[Task]] = {}
        for task in self.maps:
            for host in task.preferred_hosts:
                self._maps_by_host.setdefault(host, []).append(task)

        self.running_maps = 0
        self.running_reduces = 0
        self.completed_maps = 0
        self.completed_reduces = 0

        self.maps_done_event: Event = sim.event()
        self.done_event: Event = sim.event()
        if not self.maps:
            raise ValueError("job must have at least one map task")
        if not self.reduces:
            # Map-only job: the maps-done barrier is the job barrier.
            pass

    # -------------------------------------------------------------- identity
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def profile(self) -> WorkloadProfile:
        return self.spec.profile

    @property
    def num_maps(self) -> int:
        return len(self.maps)

    @property
    def num_reduces(self) -> int:
        return len(self.reduces)

    # -------------------------------------------------------------- progress
    @property
    def is_done(self) -> bool:
        return self.done_event.triggered

    @property
    def maps_done(self) -> bool:
        return self.completed_maps >= len(self.maps)

    @property
    def occupied_slots(self) -> int:
        """``S_occ`` of Eq. 7 — slots this job currently holds."""
        return self.running_maps + self.running_reduces

    @property
    def pending_map_count(self) -> int:
        return self._num_pending_maps

    @property
    def pending_reduce_count(self) -> int:
        return self._num_pending_reduces

    @property
    def has_pending_work(self) -> bool:
        return bool(self._num_pending_maps or self._num_pending_reduces)

    def reduces_schedulable(self, slowstart: float) -> bool:
        """Whether reduce tasks may be launched yet (slowstart gate)."""
        if not self._num_pending_reduces:
            return False
        needed = slowstart * len(self.maps)
        return self.completed_maps >= needed

    @property
    def completion_time(self) -> float:
        """Submission-to-finish latency (requires the job to be done)."""
        if self.finish_time is None:
            raise ValueError(f"job {self.job_id} has not finished")
        return self.finish_time - self.submit_time

    # --------------------------------------------------------- task dispatch
    def local_pending_map(self, machine_id: int) -> Optional[Task]:
        """A pending map task whose input block lives on ``machine_id``."""
        queue = self._maps_by_host.get(machine_id)
        if not queue:
            return None
        # Lazily skip tasks already taken through another replica's queue.
        while queue:
            task = queue[-1]
            if task.state is TaskState.PENDING:
                return task
            queue.pop()
        return None

    def take_map(self, machine_id: int, prefer_local: bool = True) -> Optional[Task]:
        """Pop a pending map for assignment to ``machine_id``.

        With ``prefer_local``, node-local tasks are taken first; otherwise
        (or when none are local) the oldest pending map is taken.
        """
        task: Optional[Task] = None
        if prefer_local:
            task = self.local_pending_map(machine_id)
        if task is None:
            queue = self._pending_maps
            while queue:
                seq, candidate = queue[0]
                if (
                    candidate.state is TaskState.PENDING
                    and candidate._pending_seq == seq
                ):
                    task = candidate
                    break
                queue.popleft()
        if task is None:
            return None
        self._mark_running(task)
        return task

    def take_reduce(self) -> Optional[Task]:
        """Pop a pending reduce for assignment."""
        queue = self._pending_reduces
        while queue:
            seq, candidate = queue[0]
            if (
                candidate.state is TaskState.PENDING
                and candidate._pending_seq == seq
            ):
                self._mark_running(candidate)
                return candidate
            queue.popleft()
        return None

    def _mark_running(self, task: Task) -> None:
        if task.state is not TaskState.PENDING:
            raise ValueError(f"{task.task_id} is not pending")
        task.state = TaskState.RUNNING
        if task.is_map:
            self.running_maps += 1
            self._num_pending_maps -= 1
        else:
            self.running_reduces += 1
            self._num_pending_reduces -= 1
        if self.start_time is None:
            self.start_time = self.sim.now

    def requeue(self, task: Task) -> None:
        """Return a running task to the pending queue (killed attempt)."""
        if task.state is not TaskState.RUNNING:
            raise ValueError(f"{task.task_id} is not running")
        task.state = TaskState.PENDING
        task._pending_seq += 1
        if task.is_map:
            self.running_maps -= 1
            self._num_pending_maps += 1
            self._pending_maps.append((task._pending_seq, task))
        else:
            self.running_reduces -= 1
            self._num_pending_reduces += 1
            self._pending_reduces.append((task._pending_seq, task))

    def complete_task(self, task: Task) -> None:
        """Mark a running task completed; fires barriers when crossed."""
        if task.state is TaskState.COMPLETED:
            # A concurrent (speculative) attempt already finished the task.
            return
        if task.state is not TaskState.RUNNING:
            raise ValueError(f"{task.task_id} completed while {task.state.value}")
        task.state = TaskState.COMPLETED
        if task.is_map:
            self.running_maps -= 1
            self.completed_maps += 1
            if self.maps_done and not self.maps_done_event.triggered:
                self.maps_done_event.succeed(self.sim.now)
        else:
            self.running_reduces -= 1
            self.completed_reduces += 1
        if (
            self.completed_maps >= len(self.maps)
            and self.completed_reduces >= len(self.reduces)
            and not self.done_event.triggered
        ):
            self.finish_time = self.sim.now
            self.done_event.succeed(self.sim.now)

    # ----------------------------------------------------------- breakdowns
    def phase_breakdown(self) -> Dict[str, float]:
        """Aggregate wall-clock seconds spent per phase across attempts.

        This is the quantity behind Fig. 1(d): the share of total task time
        a job spends in map vs shuffle vs reduce work.
        """
        totals: Dict[str, float] = {"map": 0.0, "shuffle": 0.0, "reduce": 0.0}
        for task in self.maps + self.reduces:
            for attempt in task.attempts:
                if not attempt.succeeded:
                    continue
                for phase, seconds in attempt.phases.items():
                    if phase in ("io", "cpu"):
                        totals["map"] += seconds
                    elif phase in ("shuffle", "sort"):
                        # Hadoop reports copy + sort/merge together as the
                        # shuffle stage of a reduce attempt.
                        totals["shuffle"] += seconds
                    else:
                        totals["reduce"] += seconds
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Job {self.job_id} {self.name!r} maps {self.completed_maps}/{len(self.maps)} "
            f"reduces {self.completed_reduces}/{len(self.reduces)}>"
        )
