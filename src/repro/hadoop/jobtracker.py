"""The JobTracker: job admission, heartbeat dispatch, completion tracking.

The JobTracker owns the job inventory and delegates every assignment
decision to a :class:`~repro.core.service.LocalSchedulerCore` wrapping the
pluggable :class:`~repro.schedulers.base.Scheduler` — the same control
surface the paper modifies in Hadoop 1.2.1 (Section V-A).  The DES is one
*host* of that core (the :mod:`repro.serve` daemon is the other): this
module keeps the host concerns — the sim clock, heartbeat bookkeeping,
lazy tracker expiry, trace emission — and the core keeps the decision
concerns.  It also drives the periodic control-interval tick E-Ant's
adaptive task assigner re-optimizes on, and fans completed-task reports
out to the scheduler and any registered listeners (metrics collectors,
task analyzers).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Generator, List, Optional

import numpy as np

from ..cluster import Cluster
from ..noise import NoiseModel
from ..observability.metrics import MetricsRegistry
from ..observability.tracer import NULL_TRACER, EventType
from ..simulation import Event, Simulator
from ..workloads import JobSpec
from .config import HadoopConfig
from .hdfs import BlockPlacer
from .job import Job, Task, TaskAttempt, TaskReport
from .tasktracker import TaskTracker

# Imported after the hadoop leaf modules above: repro.core's package init
# pulls in repro.core.scheduler, which imports those same leaf modules, so
# this import must come last to stay cycle-safe under either entry order
# (see the import-discipline note in repro/core/service.py).
from ..core.service import LocalSchedulerCore, TrackerInfo

if TYPE_CHECKING:  # pragma: no cover
    from ..schedulers.base import Scheduler

__all__ = ["JobTracker"]

ReportListener = Callable[[TaskReport], None]


class JobTracker:
    """Master daemon of the simulated Hadoop cluster.

    Parameters
    ----------
    sim, cluster, config:
        Simulation clock, the cluster, framework configuration.
    scheduler:
        The task-assignment policy under test.
    placer:
        HDFS block placer used for new jobs' inputs.
    skew_noise:
        Noise model supplying per-task input-size skew at job creation.
    rng:
        RNG stream for skew draws.
    tracer:
        Trace sink (:mod:`repro.observability`); defaults to the no-op
        tracer, under which no event is ever constructed.
    registry:
        Optional :class:`~repro.observability.metrics.MetricsRegistry`
        receiving assignment counters and heartbeat-gap histograms.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        config: HadoopConfig,
        scheduler: "Scheduler",
        placer: BlockPlacer,
        skew_noise: Optional[NoiseModel] = None,
        rng: Optional[np.random.Generator] = None,
        tracer=NULL_TRACER,
        registry: Optional[MetricsRegistry] = None,
        control_loop: bool = True,
    ) -> None:
        self.sim = sim
        #: Trace sink shared with the trackers and the scheduler; the no-op
        #: default keeps every emission site behind one ``enabled`` check.
        self.tracer = tracer
        #: Optional metrics registry (counters/histograms); None disables.
        self.registry = registry
        # Hot-path handles: resolved once so heartbeats and completions avoid
        # rebuilding registry keys (sorted label tuples) per event.
        self._heartbeat_gap_hist = (
            None if registry is None else registry.histogram("heartbeat_gap_seconds")
        )
        #: The transport-agnostic decision core this host drives.  Every
        #: assignment decision, control-interval tick, and completion
        #: feedback goes through it — the same object the serve daemon
        #: would drive, so simulation and service cannot drift.
        self.core = LocalSchedulerCore(
            scheduler,
            control_interval=config.control_interval,
            registry=registry,
            start_time=sim.now,
        )
        #: Whether :meth:`start_control_loop` actually spawns the periodic
        #: sim process.  Hosts that drive :meth:`control_tick` themselves
        #: (the serve engine) pass ``control_loop=False``.
        self._control_loop_enabled = control_loop
        self.cluster = cluster
        self.config = config
        self.scheduler = scheduler
        self.placer = placer
        self.skew_noise = skew_noise
        self.rng = rng if rng is not None else np.random.default_rng(0)

        self.jobs: Dict[int, Job] = {}
        self.active_jobs: List[Job] = []
        self.completed_jobs: List[Job] = []
        self.trackers: Dict[int, TaskTracker] = {}
        self.last_heartbeat: Dict[int, float] = {}
        self.expired_trackers: List[int] = []
        self.recovered_trackers: List[int] = []
        self.reports: List[TaskReport] = []
        self._listeners: List[ReportListener] = []
        self._next_job_id = 0
        self._expected_jobs: Optional[int] = None
        self._shutdown = False
        self.all_done_event: Event = sim.event()
        self._interval_process = None
        #: lower bound on the earliest time any tracker could go stale; lets
        #: the per-heartbeat expiry sweep short-circuit (see the sweep)
        self._no_expiry_before = 0.0

        scheduler.bind(self)

    # ------------------------------------------------------------- lifecycle
    def register_tracker(self, tracker: TaskTracker) -> None:
        """Called by each TaskTracker when it starts."""
        machine = tracker.machine
        self.trackers[machine.machine_id] = tracker
        self.core.register_tracker(
            TrackerInfo(
                machine_id=machine.machine_id,
                hostname=machine.hostname,
                model=machine.spec.model,
                map_slots=machine.spec.map_slots,
                reduce_slots=machine.spec.reduce_slots,
            )
        )

    def attach_telemetry(self, sink=None, profiler=None) -> None:
        """Attach a :class:`~repro.observability.TelemetrySink` and/or a
        :class:`~repro.observability.PhaseProfiler` to the heartbeat path.

        With a sink attached every heartbeat's assignment batch size is
        buffered for the sink's log-bucketed histograms, and one
        heartbeat in every ``SAMPLE_STRIDE`` additionally has its
        ``select_tasks`` wall-clock latency timed (the clock reads are
        the dominant hook cost at fleet scale); with a profiler, the
        sampled measurement is charged to the ``"select"`` phase at
        stride weight.  Pure observation either way — no RNG is consumed
        and no simulation event is scheduled.
        """
        self.core.attach_telemetry(sink, profiler)

    @property
    def telemetry(self):
        """The core's attached telemetry sink (None when detached)."""
        return self.core.telemetry

    @property
    def profiler(self):
        """The core's attached phase profiler (the null profiler when off)."""
        return self.core.profiler

    def expect_jobs(self, count: int) -> None:
        """Declare the total number of jobs this run will submit.

        The JobTracker shuts down (stopping heartbeats, draining the event
        heap) once that many jobs have completed.
        """
        if count < 1:
            raise ValueError("expected job count must be >= 1")
        self._expected_jobs = count

    @property
    def is_shutdown(self) -> bool:
        return self._shutdown

    def start_control_loop(self) -> None:
        """Begin the periodic control-interval tick (idempotent).

        A no-op when the JobTracker was built with ``control_loop=False``
        — hosts that pump the clock themselves call :meth:`control_tick`
        at their own cadence instead.
        """
        if self._control_loop_enabled and self._interval_process is None:
            self._interval_process = self.sim.process(
                self._control_loop(), name="jt-control-loop"
            )

    def _control_loop(self) -> Generator:
        while not self._shutdown:
            yield self.sim.timeout(self.config.control_interval)
            if self._shutdown:
                return
            self.control_tick()

    def control_tick(self) -> None:
        """Fire control-interval ticks due at the current sim time."""
        self.core.advance_time(self.sim.now, on_interval=self._trace_interval)

    def _trace_interval(self, index: int) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                EventType.CONTROL_INTERVAL,
                self.sim.now,
                index=index,
                active_jobs=len(self.active_jobs),
                pending_maps=sum(j.pending_map_count for j in self.active_jobs),
                pending_reduces=sum(j.pending_reduce_count for j in self.active_jobs),
            )

    # ------------------------------------------------------------- admission
    def submit(self, spec: JobSpec, replica_hosts=None) -> Job:
        """Admit a job: place its blocks, apply data skew, notify scheduler.

        ``replica_hosts`` overrides HDFS placement (one tuple of machine
        ids per map task) — used by the data-locality experiments.
        """
        job_id = self._next_job_id
        self._next_job_id += 1
        num_maps = spec.num_maps(self.config.block_mb)
        if replica_hosts is None:
            replica_hosts = self.placer.place_job_blocks(num_maps)
        sizes = [self.config.block_mb] * num_maps
        if self.skew_noise is not None and self.skew_noise.skew_sigma > 0:
            sizes = [s * self.skew_noise.skew_factor(self.rng) for s in sizes]
        job = Job(
            sim=self.sim,
            job_id=job_id,
            spec=spec,
            block_mb=self.config.block_mb,
            map_input_sizes=sizes,
            replica_hosts=replica_hosts,
        )
        self.jobs[job_id] = job
        self.active_jobs.append(job)
        job.done_event.add_callback(lambda _e, j=job: self._job_done(j))
        if self.tracer.enabled:
            self._trace_job_submitted(job)
        self.core.job_added(job)
        return job

    def _trace_job_submitted(self, job: Job) -> None:
        self.tracer.emit(
            EventType.JOB_SUBMITTED,
            self.sim.now,
            job_id=job.job_id,
            name=job.name,
            application=job.profile.name,
            num_maps=job.num_maps,
            num_reduces=job.num_reduces,
        )

    def submit_prepared(self, job: Job) -> Job:
        """Admit a pre-built job (experiments that control placement)."""
        if job.job_id in self.jobs:
            raise ValueError(f"job id {job.job_id} already admitted")
        self._next_job_id = max(self._next_job_id, job.job_id + 1)
        self.jobs[job.job_id] = job
        self.active_jobs.append(job)
        job.done_event.add_callback(lambda _e, j=job: self._job_done(j))
        if self.tracer.enabled:
            self._trace_job_submitted(job)
        self.core.job_added(job)
        return job

    def next_job_id(self) -> int:
        """Reserve the next job id (for submit_prepared callers)."""
        job_id = self._next_job_id
        self._next_job_id += 1
        return job_id

    def _job_done(self, job: Job) -> None:
        self.active_jobs.remove(job)
        self.completed_jobs.append(job)
        if self.tracer.enabled:
            self.tracer.emit(
                EventType.JOB_COMPLETED,
                self.sim.now,
                job_id=job.job_id,
                name=job.name,
                completion_time=job.completion_time,
            )
        self.core.job_removed(job)
        if self._expected_jobs is not None and len(self.completed_jobs) >= self._expected_jobs:
            self.shutdown()

    def shutdown(self) -> None:
        """Stop heartbeats and periodic loops; fires ``all_done_event``."""
        if self._shutdown:
            return
        self._shutdown = True
        if not self.all_done_event.triggered:
            self.all_done_event.succeed(self.sim.now)

    # -------------------------------------------------------------- heartbeat
    def heartbeat(self, tracker: TaskTracker) -> List[Task]:
        """Handle one TaskTracker heartbeat; returns tasks to launch.

        The scheduler sees the tracker's free slots and may return at most
        that many tasks of each kind (the slot constraint of Eq. 1).
        Stale trackers are expired lazily on every live heartbeat, as in
        Hadoop.
        """
        if self._shutdown:
            return []
        machine_id = tracker.machine.machine_id
        previous = self.last_heartbeat.get(machine_id)
        self.last_heartbeat[machine_id] = self.sim.now
        if self._heartbeat_gap_hist is not None and previous is not None:
            self._heartbeat_gap_hist.observe(self.sim.now - previous)
        self._expire_dead_trackers()
        if machine_id not in self.trackers:
            return []  # this tracker was itself expired
        status = tracker.status()
        core = self.core
        assignments = core.select(status, self.sim.now)
        if self.tracer.enabled:
            self.tracer.emit(
                EventType.HEARTBEAT,
                self.sim.now,
                machine_id=machine_id,
                free_map_slots=status.free_map_slots,
                free_reduce_slots=status.free_reduce_slots,
                running_maps=status.running_maps,
                running_reduces=status.running_reduces,
                assigned_maps=core.last_maps,
                assigned_reduces=core.last_reduces,
                gap=None if previous is None else self.sim.now - previous,
            )
        return assignments

    # ----------------------------------------------------------- failures
    def _expire_dead_trackers(self) -> None:
        """Declare silent trackers dead and requeue their running tasks.

        Runs on every heartbeat, so the O(trackers) sweep is gated behind a
        cached lower bound: no tracker can be stale before
        ``min(last_heartbeat) + expiry`` as of the previous sweep.
        Heartbeats and recoveries only *raise* timestamps (and expiry only
        removes trackers), so the bound stays a valid lower bound without
        invalidation; a sweep at or past it recomputes the next one.
        """
        expiry = self.config.tracker_expiry
        if expiry <= 0:
            return
        now = self.sim.now
        if now < self._no_expiry_before:
            return
        oldest = None
        for machine_id, tracker in list(self.trackers.items()):
            last = self.last_heartbeat.get(machine_id)
            if last is None:
                continue
            if now - last >= expiry:
                self.expire_tracker(machine_id)
            elif oldest is None or last < oldest:
                oldest = last
        # With no timestamped trackers left, the earliest a future first
        # heartbeat could go stale is ``expiry`` from now.
        self._no_expiry_before = (oldest if oldest is not None else now) + expiry

    def expire_tracker(self, machine_id: int) -> None:
        """Remove a tracker from service and recover its in-flight tasks.

        Running tasks whose latest attempt sat on the dead machine go back
        to their jobs' pending queues, so later heartbeats re-execute them
        elsewhere (Hadoop's task re-execution on TaskTracker failure).
        """
        tracker = self.trackers.pop(machine_id, None)
        if tracker is None:
            return
        self.expired_trackers.append(machine_id)
        if self.tracer.enabled:
            self.tracer.emit(EventType.TRACKER_EXPIRED, self.sim.now, machine_id=machine_id)
        self._requeue_lost_tasks(machine_id)

    def _requeue_lost_tasks(self, machine_id: int) -> int:
        """Requeue running tasks whose latest attempt died on ``machine_id``.

        Returns how many tasks went back to pending queues.
        """
        requeued = 0
        for job in list(self.active_jobs):
            for task in job.maps + job.reduces:
                if task.state.value != "running" or not task.attempts:
                    continue
                latest = task.attempts[-1]
                if latest.machine_id == machine_id and not latest.succeeded:
                    latest.killed = True
                    if latest.finish_time is None:
                        latest.finish_time = self.sim.now
                    job.requeue(task)
                    requeued += 1
        return requeued

    def tracker_recovered(self, tracker: TaskTracker) -> None:
        """A crashed TaskTracker restarted and is rejoining service.

        Re-registers the tracker and refreshes its heartbeat timestamp so
        lazy expiry does not immediately re-expire it during the desync
        delay before its first heartbeat.  If the crash was shorter than
        ``tracker_expiry`` the JobTracker never noticed the silence, so
        the tasks that died with the daemon are requeued here — a
        restarted TaskTracker always comes back empty.
        """
        machine_id = tracker.machine.machine_id
        self.trackers[machine_id] = tracker
        self.last_heartbeat[machine_id] = self.sim.now
        self._requeue_lost_tasks(machine_id)
        self.recovered_trackers.append(machine_id)
        if self.tracer.enabled:
            self.tracer.emit(
                EventType.TRACKER_RECOVERED, self.sim.now, machine_id=machine_id
            )

    # ------------------------------------------------------------ completions
    def add_report_listener(self, listener: ReportListener) -> None:
        """Register a callback invoked for every successful task report."""
        self._listeners.append(listener)

    def task_finished(self, tracker: TaskTracker, attempt: TaskAttempt) -> None:
        """A TaskTracker reports a successful attempt."""
        task = attempt.task
        already_done = task.state.value == "completed"
        task.job.complete_task(task)
        if already_done:
            return  # speculative duplicate: winner already reported
        report = attempt.to_report()
        self.reports.append(report)
        self.core.task_report(report)
        for listener in self._listeners:
            listener(report)

    def task_killed(self, tracker: TaskTracker, attempt: TaskAttempt) -> None:
        """A TaskTracker reports a killed attempt; requeue if still needed."""
        task = attempt.task
        attempt.killed = True
        if task.state.value == "running":
            task.job.requeue(task)

    # ---------------------------------------------------------------- queries
    def job(self, job_id: int) -> Job:
        return self.jobs[job_id]

    def pending_work_exists(self) -> bool:
        """Any active job with unfinished tasks?"""
        return any(not job.is_done for job in self.active_jobs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<JobTracker active={len(self.active_jobs)} "
            f"done={len(self.completed_jobs)} trackers={len(self.trackers)}>"
        )
