"""Parallel sweep execution over lists of :class:`ScenarioSpec`.

:class:`SweepRunner` fans a list of specs out over a ``multiprocessing``
pool with per-task retry and timeout, falls back to in-process serial
execution whenever the pool misbehaves (a worker crash, a fork failure, a
sandboxed environment without shared-memory semaphores), and resolves
specs through a content-addressed :class:`~repro.runner.cache.ResultCache`
first when one is attached.

Because every run rebuilds its simulator and RNG streams from the spec's
seed, serial execution, pool execution, and cache restoration all produce
bit-identical :class:`~repro.metrics.RunMetrics` for the same spec — the
common-random-numbers guarantee survives the process boundary.

Progress streams through the observability layer: attach a
:class:`~repro.observability.Tracer` and each resolved spec emits a
``sweep.task`` event (plus a final ``sweep.summary``); attach a
``progress`` callable to get human-readable one-liners.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..observability import EventType, Tracer
from .cache import ResultCache
from .record import RunRecord, build_record
from .shard import ShardManifest
from .spec import ScenarioSpec
from .spool import ResultSpool, SweepAggregate

__all__ = ["SweepRunner", "SweepError", "SweepReport", "resolve_specs"]


def resolve_specs(
    specs: Sequence[ScenarioSpec],
    runner: Optional["SweepRunner"] = None,
) -> List[RunRecord]:
    """Resolve a spec list through ``runner``, or serially in-process.

    The figure harnesses call this with their optional ``runner``
    argument: ``None`` preserves the historical serial, uncached behavior
    exactly; passing a :class:`SweepRunner` buys parallelism and caching
    without touching the harness code.
    """
    if runner is None:
        return [spec.run_record() for spec in specs]
    return runner.run(specs)

ProgressFn = Callable[[str], None]


class SweepError(RuntimeError):
    """A spec failed even after retries and the serial fallback."""

    def __init__(self, spec: ScenarioSpec, cause: BaseException) -> None:
        super().__init__(
            f"spec {spec.display_label} ({spec.short_hash}) failed: {cause!r}"
        )
        self.spec = spec
        self.cause = cause


def _execute_record_worker(spec: ScenarioSpec) -> RunRecord:
    """Pool entry point: run one spec, return its portable record."""
    start = time.perf_counter()
    result = spec.run()
    return build_record(spec, result, wall_seconds=time.perf_counter() - start)


def _pool_worker_init() -> None:
    """Reset signal disposition in pool workers.

    Workers fork with the parent's handlers installed: without this,
    ``Pool.terminate()``'s SIGTERM would fire the parent's
    raise-KeyboardInterrupt handler inside every worker (a traceback per
    worker on every Ctrl-C), and a terminal's session-wide SIGINT would
    race the parent's orchestrated teardown.  The parent alone owns
    interruption; workers die quietly when told to.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)


@dataclass
class SweepReport:
    """Accounting of one :meth:`SweepRunner.run` invocation."""

    total: int = 0
    cache_hits: int = 0
    executed: int = 0
    retried: int = 0
    fell_back_serial: int = 0
    #: Specs restored from an existing spool during resume reconciliation.
    resumed: int = 0
    #: Spool lines skipped during resume (damaged or duplicate).
    skipped_lines: int = 0
    wall_seconds: float = 0.0
    #: index -> "cache" | "parallel" | "serial" | "spool"
    sources: Dict[int, str] = field(default_factory=dict)


@dataclass
class SweepRunner:
    """Execute spec lists, in parallel, with caching and retry.

    Parameters
    ----------
    workers:
        Pool size; ``None`` uses ``os.cpu_count()``, ``1`` runs serially
        in-process (no pool, no pickling).
    cache:
        A :class:`ResultCache` to consult/populate, or ``None`` for no
        caching (the default — figure harnesses opt in explicitly).
    retries:
        How many *additional* attempts a failed spec gets (in the parent
        process, serially) before the sweep raises :class:`SweepError`.
    task_timeout:
        Seconds to wait for one pool task before treating it as failed
        and re-running it serially; ``None`` waits forever.
    tracer:
        Optional observability sink for ``sweep.task`` / ``sweep.summary``
        events (wall-clock timestamps relative to sweep start).
    progress:
        Optional callable receiving one human-readable line per resolved
        spec (the CLI passes ``print``).
    warn:
        Optional callable for resume-reconciliation diagnostics (damaged
        spool lines, foreign entries); the CLI points it at stderr.
    """

    workers: Optional[int] = None
    cache: Optional[ResultCache] = None
    retries: int = 1
    task_timeout: Optional[float] = None
    tracer: Optional[Tracer] = None
    progress: Optional[ProgressFn] = None
    warn: Optional[ProgressFn] = None

    def __post_init__(self) -> None:
        if self.workers is None:
            self.workers = os.cpu_count() or 1
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        self.last_report: Optional[SweepReport] = None

    # ------------------------------------------------------------- plumbing
    def _emit(
        self,
        started: float,
        index: int,
        total: int,
        spec: ScenarioSpec,
        source: str,
        seconds: float,
        report: SweepReport,
    ) -> None:
        """One progress line / trace event per *resolved* spec.

        Lines carry live sweep state — completed/total, cache-hit rate so
        far, this spec's wall time, and a throughput-extrapolated ETA
        (elapsed ÷ completed × remaining; the parallel path's completion
        order already folds pool concurrency into the throughput).
        """
        completed = len(report.sources)
        elapsed = time.perf_counter() - started
        remaining = total - completed
        eta = elapsed / completed * remaining if completed else 0.0
        hit_rate = report.cache_hits / completed if completed else 0.0
        if self.tracer is not None:
            self.tracer.emit(
                EventType.SWEEP_TASK,
                elapsed,
                index=index,
                total=total,
                completed=completed,
                label=spec.display_label,
                spec_hash=spec.short_hash,
                source=source,
                seconds=round(seconds, 6),
                cache_hits=report.cache_hits,
                eta_seconds=round(eta, 3),
            )
        if self.progress is not None:
            self.progress(
                f"[{completed}/{total}] {spec.display_label:32s} "
                f"{source:8s} {seconds:7.2f}s  "
                f"cache {hit_rate * 100:3.0f}%  eta {eta:6.0f}s"
            )

    def _run_serial_one(
        self, spec: ScenarioSpec, report: Optional[SweepReport] = None
    ) -> RunRecord:
        """One spec with retries, in-process."""
        last_error: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if attempt and report is not None:
                report.retried += 1
            try:
                return _execute_record_worker(spec)
            except Exception as error:  # deterministic failures rarely heal,
                last_error = error  # but retry covers transient ones (OOM, signals)
        # Chain explicitly: by the time we raise we are outside the except
        # block, so without ``from`` the worker's traceback would be lost
        # and the failure would surface as a bare SweepError with no clue
        # where inside the scenario it blew up.
        raise SweepError(spec, last_error) from last_error  # type: ignore[arg-type]

    def _run_pool(
        self,
        pending: List[Tuple[int, ScenarioSpec]],
        on_record: Callable[[int, ScenarioSpec, RunRecord, str, float], None],
        report: SweepReport,
    ) -> List[Tuple[int, ScenarioSpec]]:
        """Fan ``pending`` out over a pool; return what still needs serial.

        Each completed record is handed to ``on_record`` (which stores or
        spools it) as soon as its result is collected, and submission is
        window-bounded (a few tasks per worker in flight), so the pool
        path holds O(workers) records regardless of grid size — the
        memory contract spooled 10k-spec sweeps rely on.
        """
        leftovers: List[Tuple[int, ScenarioSpec]] = []
        resolved: set = set()
        processes = min(self.workers or 1, len(pending))
        window = max(8, 4 * processes)
        try:
            with multiprocessing.Pool(
                processes=processes, initializer=_pool_worker_init
            ) as pool:
                in_flight: deque = deque()

                def collect_oldest() -> None:
                    index, spec, handle = in_flight.popleft()
                    try:
                        record = handle.get(timeout=self.task_timeout)
                    except Exception:
                        # Worker crash, timeout, or unpicklable failure:
                        # this spec goes to the serial fallback.
                        leftovers.append((index, spec))
                        return
                    resolved.add(index)
                    report.executed += 1
                    report.sources[index] = "parallel"
                    on_record(index, spec, record, "parallel", record.wall_seconds)

                for index, spec in pending:
                    in_flight.append(
                        (index, spec, pool.apply_async(_execute_record_worker, (spec,)))
                    )
                    if len(in_flight) >= window:
                        collect_oldest()
                while in_flight:
                    collect_oldest()
        except Exception:
            # The pool itself failed (fork refused, semaphores unavailable,
            # broken pipe on teardown): degrade gracefully to serial for
            # everything not already resolved.
            leftovers = [(i, s) for i, s in pending if i not in resolved]
        return leftovers

    def _flush_partial(
        self,
        specs: Sequence[ScenarioSpec],
        results: List[Optional[RunRecord]],
        report: SweepReport,
        started: float,
    ) -> None:
        """Persist what an interrupted sweep already resolved.

        Every executed record goes into the cache (when one is attached)
        so a re-run after Ctrl-C resumes from the interruption point
        instead of re-simulating, and ``last_report`` reflects the partial
        accounting.
        """
        if self.cache is not None:
            for index, spec in enumerate(specs):
                if results[index] is not None and report.sources.get(index) != "cache":
                    self.cache.put(spec, results[index])  # type: ignore[arg-type]
        report.wall_seconds = time.perf_counter() - started
        self.last_report = report

    # ------------------------------------------------------------------ API
    def run(self, specs: Sequence[ScenarioSpec]) -> List[RunRecord]:
        """Resolve every spec (cache, pool, then serial fallback), in order.

        The returned list is index-aligned with ``specs``.  Raises
        :class:`SweepError` if any spec still fails after retries.

        SIGINT and SIGTERM interrupt the sweep cleanly: pool workers are
        terminated (the ``Pool`` context manager handles that on the way
        out), already-resolved records are flushed to the cache, and
        ``KeyboardInterrupt`` propagates to the caller.  SIGTERM is
        mapped onto ``KeyboardInterrupt`` for the duration of the run
        (main thread only) so both signals take the same path.
        """
        specs = list(specs)
        total = len(specs)
        started = time.perf_counter()
        report = SweepReport(total=total)
        results: List[Optional[RunRecord]] = [None] * total

        previous_sigterm = None
        if threading.current_thread() is threading.main_thread():
            def _on_sigterm(signum, frame):  # pragma: no cover - signal path
                raise KeyboardInterrupt
            previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)

        def on_record(
            index: int, spec: ScenarioSpec, record: RunRecord,
            source: str, seconds: float,
        ) -> None:
            results[index] = record
            self._emit(started, index, total, spec, source, seconds, report)

        try:
            pending: List[Tuple[int, ScenarioSpec]] = []
            for index, spec in enumerate(specs):
                cached = self.cache.get(spec) if self.cache is not None else None
                if cached is not None:
                    results[index] = cached
                    report.cache_hits += 1
                    report.sources[index] = "cache"
                    self._emit(started, index, total, spec, "cache", 0.0, report)
                else:
                    pending.append((index, spec))

            if pending and (self.workers or 1) > 1 and len(pending) > 1:
                pending = self._run_pool(pending, on_record, report)
                report.fell_back_serial = len(pending)

            for index, spec in pending:
                attempt_started = time.perf_counter()
                record = self._run_serial_one(spec, report)
                report.executed += 1
                report.sources[index] = "serial"
                on_record(
                    index, spec, record, "serial",
                    time.perf_counter() - attempt_started,
                )
        except KeyboardInterrupt:
            self._flush_partial(specs, results, report, started)
            raise
        finally:
            if previous_sigterm is not None:
                signal.signal(signal.SIGTERM, previous_sigterm)

        if self.cache is not None:
            for index, spec in enumerate(specs):
                if report.sources.get(index) != "cache":
                    self.cache.put(spec, results[index])  # type: ignore[arg-type]

        report.wall_seconds = time.perf_counter() - started
        if self.tracer is not None:
            self.tracer.emit(
                EventType.SWEEP_SUMMARY,
                report.wall_seconds,
                total=report.total,
                cache_hits=report.cache_hits,
                executed=report.executed,
                serial_fallbacks=report.fell_back_serial,
                wall_seconds=round(report.wall_seconds, 6),
            )
        self.last_report = report
        return results  # type: ignore[return-value]

    def run_spooled(
        self,
        specs: Sequence[ScenarioSpec],
        spool: ResultSpool,
        manifest: Optional[ShardManifest] = None,
    ) -> SweepAggregate:
        """Resolve specs *through a spool*: streaming, resumable, O(1) memory.

        Every record is flushed to ``spool`` (and the cache, when one is
        attached) the moment it completes and then dropped — nothing
        accumulates in this process, so peak memory is flat in grid size.
        On entry, an existing spool is reconciled first: valid entries for
        specs of this grid are folded into the aggregate and **not**
        re-executed; damaged or truncated lines (a SIGKILL mid-write) are
        skipped with a warning and their specs re-run.  Running the same
        sweep against the same spool twice is therefore idempotent, and a
        sweep killed at any point resumes where it died.

        Duplicate specs (same hash) collapse — a spooled result set is a
        set.  Returns the incremental :class:`SweepAggregate`; the records
        themselves live in the spool (reassemble with
        :func:`~repro.runner.spool.merge_spools`).

        ``manifest`` is presentation/observability metadata: when given, a
        ``sweep.shard`` trace event announces the shard coordinates.
        """
        by_hash: Dict[str, ScenarioSpec] = {}
        for spec in specs:
            by_hash.setdefault(spec.spec_hash(), spec)
        specs = list(by_hash.values())
        hash_to_index = {h: i for i, h in enumerate(by_hash)}
        total = len(specs)
        started = time.perf_counter()
        report = SweepReport(total=total)
        aggregate = SweepAggregate()

        def warn(line: str) -> None:
            report.skipped_lines += 1
            if self.warn is not None:
                self.warn(line)

        if self.tracer is not None and manifest is not None:
            self.tracer.emit(
                EventType.SWEEP_SHARD,
                0.0,
                grid_digest=manifest.grid_digest,
                shard_index=manifest.shard_index,
                shard_count=manifest.shard_count,
                shard_specs=len(manifest.spec_hashes),
                grid_size=manifest.grid_size,
            )

        # ---------------------------------------- resume reconciliation
        foreign = 0
        for spec_hash, _digest, record in spool.scan(warn):
            index = hash_to_index.get(spec_hash)
            if index is None:
                foreign += 1
                if self.warn is not None:
                    self.warn(
                        f"{spool.path}: warning: spooled spec "
                        f"{spec_hash[:12]} is not in this grid; ignored"
                    )
                continue
            aggregate.add(record)
            report.resumed += 1
            report.sources[index] = "spool"
            self._emit(started, index, total, specs[index], "spool", 0.0, report)
        if self.tracer is not None and (
            report.resumed or report.skipped_lines or foreign
        ):
            self.tracer.emit(
                EventType.SWEEP_RESUME,
                time.perf_counter() - started,
                resumed=report.resumed,
                skipped_lines=report.skipped_lines,
                foreign=foreign,
                remaining=total - len(report.sources),
            )

        previous_sigterm = None
        if threading.current_thread() is threading.main_thread():
            def _on_sigterm(signum, frame):  # pragma: no cover - signal path
                raise KeyboardInterrupt
            previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)

        def on_record(
            index: int, spec: ScenarioSpec, record: RunRecord,
            source: str, seconds: float,
        ) -> None:
            # Cache before spooling: if the spool append is the crash
            # point (the rig's kill hook lives there), the result is
            # already durable in the cache for the resumed run.
            if self.cache is not None and source != "cache":
                self.cache.put(spec, record)
            spool.append(record)
            aggregate.add(record)
            self._emit(started, index, total, spec, source, seconds, report)

        try:
            pending: List[Tuple[int, ScenarioSpec]] = []
            for index, spec in enumerate(specs):
                if index in report.sources:
                    continue  # restored from the spool above
                cached = self.cache.get(spec) if self.cache is not None else None
                if cached is not None:
                    report.cache_hits += 1
                    report.sources[index] = "cache"
                    on_record(index, spec, cached, "cache", 0.0)
                else:
                    pending.append((index, spec))

            if pending and (self.workers or 1) > 1 and len(pending) > 1:
                pending = self._run_pool(pending, on_record, report)
                report.fell_back_serial = len(pending)

            for index, spec in pending:
                attempt_started = time.perf_counter()
                record = self._run_serial_one(spec, report)
                report.executed += 1
                report.sources[index] = "serial"
                on_record(
                    index, spec, record, "serial",
                    time.perf_counter() - attempt_started,
                )
        except KeyboardInterrupt:
            # Everything completed so far is already flushed to the spool
            # (and cache) — a re-run resumes from the interruption point.
            report.wall_seconds = time.perf_counter() - started
            self.last_report = report
            raise
        finally:
            if previous_sigterm is not None:
                signal.signal(signal.SIGTERM, previous_sigterm)
            spool.close()

        report.wall_seconds = time.perf_counter() - started
        if self.tracer is not None:
            self.tracer.emit(
                EventType.SWEEP_SUMMARY,
                report.wall_seconds,
                total=report.total,
                cache_hits=report.cache_hits,
                executed=report.executed,
                resumed=report.resumed,
                serial_fallbacks=report.fell_back_serial,
                wall_seconds=round(report.wall_seconds, 6),
            )
        self.last_report = report
        return aggregate
