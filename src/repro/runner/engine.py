"""The scenario execution engine.

:func:`execute_spec` wires simulator + cluster + HDFS + TaskTrackers +
JobTracker + scheduler + workload submission from one declarative
:class:`~repro.runner.spec.ScenarioSpec`, runs to completion, and returns a
:class:`ScenarioResult` holding the live objects of the finished run.

Runtime-only concerns that deliberately stay *out* of the spec (they are
either observational or not declaratively serializable) are passed as
keyword arguments: a trace sink, per-job placement overrides, a custom
network fabric, and a scheduler *factory* for ad-hoc policies.

Scheduler identity is normally carried by *name* (``"fifo" | "fair" |
"tarazu" | "late" | "e-ant"``); runs with different schedulers but the same
seed see identical workloads, block placements, and noise draws (common
random numbers via named RNG streams).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple, Union

from ..cluster import Cluster, Network
from ..core import EAntConfig, EAntScheduler
from ..energy import ClusterMeter, wasted_energy_breakdown
from ..faults import FaultInjector
from ..hadoop import BlockPlacer, JobTracker, TaskTracker
from ..metrics import MetricsCollector, RunMetrics, build_job_results
from ..observability import (
    NULL_PROFILER,
    NULL_TRACER,
    EventType,
    MetricsRegistry,
    PhaseProfiler,
    SnapshotSampler,
    TelemetryConfig,
    TelemetrySink,
    Tracer,
    write_jsonl,
)
from ..schedulers import (
    CapacityScheduler,
    CoveringSubsetScheduler,
    FairScheduler,
    FifoScheduler,
    LateScheduler,
    Scheduler,
    TarazuScheduler,
)
from ..simulation import RandomStreams, Simulator
from .record import BacklogRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spec imports us)
    from .spec import ScenarioSpec

__all__ = ["ScenarioResult", "execute_spec", "make_scheduler", "SCHEDULER_NAMES"]

SchedulerFactory = Callable[[RandomStreams], Scheduler]

SCHEDULER_NAMES = ("fifo", "fair", "capacity", "tarazu", "late", "covering-subset", "e-ant")


def make_scheduler(
    name: str,
    streams: RandomStreams,
    eant_config: Optional[EAntConfig] = None,
) -> Scheduler:
    """Instantiate a scheduler by name with its own RNG stream."""
    key = name.strip().lower()
    if key == "fifo":
        return FifoScheduler()
    if key == "fair":
        return FairScheduler()
    if key == "capacity":
        return CapacityScheduler()
    if key == "covering-subset":
        return CoveringSubsetScheduler()
    if key == "tarazu":
        return TarazuScheduler()
    if key == "late":
        return LateScheduler()
    if key in ("e-ant", "eant"):
        return EAntScheduler(
            config=eant_config or EAntConfig(),
            rng=streams.stream("eant"),
        )
    raise ValueError(f"unknown scheduler {name!r}; known: {SCHEDULER_NAMES}")


@dataclass
class ScenarioResult:
    """Everything observable from one run."""

    metrics: RunMetrics
    scheduler: Scheduler
    jobtracker: JobTracker
    cluster: Cluster
    meter: Optional[ClusterMeter] = None
    tracer: Optional[Tracer] = None
    registry: Optional[MetricsRegistry] = None
    injector: Optional[FaultInjector] = None
    telemetry: Optional[TelemetrySink] = None
    profiler: Optional[PhaseProfiler] = None
    #: Open-loop admission/backlog accounting (None on closed-loop runs)
    backlog: Optional[BacklogRecord] = None

    @property
    def eant(self) -> EAntScheduler:
        """The scheduler, asserted to be E-Ant (adaptiveness experiments)."""
        if not isinstance(self.scheduler, EAntScheduler):
            raise TypeError(f"scheduler is {self.scheduler.name!r}, not e-ant")
        return self.scheduler


def execute_spec(
    spec: "ScenarioSpec",
    *,
    trace: Union[None, str, Path, Tracer] = None,
    telemetry: Union[None, bool, int, float, TelemetryConfig] = None,
    placements: Optional[Dict[int, List[Tuple[int, ...]]]] = None,
    network: Optional[Network] = None,
    scheduler_factory: Optional[SchedulerFactory] = None,
) -> ScenarioResult:
    """Run one complete scenario described by ``spec``.

    Parameters
    ----------
    spec:
        The declarative run description (workload, scheduler, fleet,
        Hadoop config, noise, seed, metering).
    trace:
        ``None`` (default) runs fully uninstrumented — every trace hook
        stays on the :data:`~repro.observability.NULL_TRACER` no-op path.
        A path writes a JSONL trace there on completion; a
        :class:`~repro.observability.Tracer` collects events in memory.
        Either way a :class:`~repro.observability.MetricsRegistry` is
        attached and periodic ``metrics.snapshot`` events are emitted
        every ``spec.meter_interval`` simulated seconds.
    telemetry:
        ``None``/``False`` (default) runs without the columnar telemetry
        layer.  ``True`` attaches a
        :class:`~repro.observability.TelemetrySink` sampling fleet-wide
        aggregates once per control interval plus a
        :class:`~repro.observability.PhaseProfiler` timing the kernel hot
        sections; a number overrides the sampling interval (simulated
        seconds); a :class:`~repro.observability.TelemetryConfig` sets
        everything explicitly.  Like tracing, telemetry is pure
        observation — it consumes no RNG and the run's digest is
        bit-identical with it on, off, or at any interval.
    placements:
        Optional per-job replica overrides: index in the submitted job
        list -> replica host tuples (locality experiments).
    network:
        Custom network fabric (e.g. a blocking switch for the locality
        experiment); defaults to non-blocking Gigabit Ethernet.
    scheduler_factory:
        A ``streams -> Scheduler`` factory overriding ``spec.scheduler``
        (custom-policy experiments; such runs are not cacheable).
    """
    ordered = sorted(spec.jobs, key=lambda j: j.submit_time)
    if not ordered:
        raise ValueError("scenario needs at least one job")

    sim = Simulator()
    streams = RandomStreams(spec.seed)
    cluster = Cluster(sim, list(spec.fleet), network or Network())
    config = spec.hadoop
    placer = BlockPlacer(cluster, config.replication, streams.stream("hdfs"))

    if scheduler_factory is not None:
        policy = scheduler_factory(streams)
    else:
        policy = make_scheduler(spec.scheduler, streams, spec.eant_config)

    # Tracing is pure observation: it consumes no RNG and schedules no
    # behavior-bearing events, so a traced run is bit-identical to an
    # untraced one with the same seed.
    tracer: Optional[Tracer] = None
    registry: Optional[MetricsRegistry] = None
    trace_path: Optional[Path] = None
    if trace is not None:
        if isinstance(trace, Tracer):
            tracer = trace
        else:
            tracer = Tracer()
            trace_path = Path(trace)
            # Fail fast on an unwritable destination, not after the run.
            trace_path.touch()
        registry = MetricsRegistry()
        sim.tracer = tracer

    # Telemetry follows the same contract: sampling consumes no RNG, reads
    # energy through non-mutating projections, and schedules only its own
    # digest-neutral timeout events.
    telemetry_config = TelemetryConfig.coerce(telemetry)
    profiler: Optional[PhaseProfiler] = None
    if telemetry_config is not None and telemetry_config.profile:
        profiler = PhaseProfiler()
        sim.profiler = profiler
        for machine in cluster:
            machine.profiler = profiler

    jobtracker = JobTracker(
        sim,
        cluster,
        config,
        policy,
        placer,
        skew_noise=spec.noise,
        rng=streams.stream("skew"),
        tracer=tracer if tracer is not None else NULL_TRACER,
        registry=registry,
    )
    jobtracker.expect_jobs(len(ordered))

    collector = MetricsCollector(cluster)
    jobtracker.add_report_listener(collector.on_report)

    trackers: List[TaskTracker] = []
    for machine in cluster:
        tracker = TaskTracker(
            sim,
            machine,
            config,
            noise=spec.noise,
            rng=streams.stream(f"tt-{machine.machine_id}"),
        )
        tracker.start(jobtracker)
        trackers.append(tracker)

    sink: Optional[TelemetrySink] = None
    if telemetry_config is not None:
        sink = TelemetrySink(
            cluster,
            jobtracker=jobtracker,
            scheduler=policy,
            interval=(
                telemetry_config.interval
                if telemetry_config.interval is not None
                else config.control_interval
            ),
            max_samples=telemetry_config.max_samples,
            profiler=profiler if profiler is not None else NULL_PROFILER,
        )
        jobtracker.attach_telemetry(sink, profiler)
        sink.attach(sim)

    injector: Optional[FaultInjector] = None
    if spec.faults is not None:
        injector = FaultInjector(
            plan=spec.faults,
            sim=sim,
            cluster=cluster,
            jobtracker=jobtracker,
            config=config,
            streams=streams,
            trackers=trackers,
            noise=spec.noise,
            tracer=tracer if tracer is not None else NULL_TRACER,
            profiler=profiler if profiler is not None else NULL_PROFILER,
        )
        injector.attach()

    meter: Optional[ClusterMeter] = None
    if spec.with_meter:
        meter = ClusterMeter(cluster, sample_interval=spec.meter_interval)
        meter.attach(sim, stop_when=lambda: jobtracker.is_shutdown)

    sampler: Optional[SnapshotSampler] = None
    if tracer is not None and registry is not None:
        models: Dict[str, int] = {}
        for machine in cluster:
            models[machine.spec.model] = models.get(machine.spec.model, 0) + 1
        tracer.emit(
            EventType.HEADER,
            0.0,
            scheduler=policy.name,
            seed=spec.seed,
            jobs=len(ordered),
            machines=len(cluster),
            fleet=models,
            heartbeat_interval=config.heartbeat_interval,
            control_interval=config.control_interval,
            snapshot_interval=spec.meter_interval,
        )
        sampler = SnapshotSampler(
            registry=registry,
            cluster=cluster,
            jobtracker=jobtracker,
            interval=spec.meter_interval,
            tracer=tracer,
        )
        sampler.attach(sim)

    def submit_all():
        for index, job_spec in enumerate(ordered):
            if job_spec.submit_time > sim.now:
                yield sim.timeout(job_spec.submit_time - sim.now)
            if jobtracker.is_shutdown:
                # Open-loop horizon hit: the rest of the offered stream
                # never enters the system (counted as not-admitted).
                return
            override = placements.get(index) if placements else None
            jobtracker.submit(job_spec, replica_hosts=override)

    sim.process(submit_all(), name="job-submitter")

    if spec.open_loop:
        # Open-loop overload mode: the run is cut at the horizon whether or
        # not the workload drained.  shutdown() is idempotent, so a
        # workload that *does* drain first ends early exactly as a
        # closed-loop run would.
        def stop_at_horizon():
            yield sim.timeout(spec.horizon)
            jobtracker.shutdown()

        sim.process(stop_at_horizon(), name="open-loop-horizon")

    # Snapshot energy at the instant the workload completes, so trailing
    # heartbeat ticks do not blur the comparison between schedulers.
    snapshot: Dict[str, object] = {}

    def on_all_done(_event):
        cluster.finish_energy_accounting()
        snapshot["energy_by_type"] = cluster.energy_by_type()
        snapshot["idle"] = sum(m.energy.idle_joules for m in cluster)
        snapshot["dynamic"] = sum(m.energy.dynamic_joules for m in cluster)
        snapshot["utilization_by_type"] = cluster.utilization_by_type()
        snapshot["makespan"] = sim.now
        if spec.open_loop:
            # Backlog counters are taken at the cut instant: in-flight
            # attempts may still complete afterwards while the simulator
            # drains, and those must not blur the at-horizon picture.
            admitted = len(jobtracker.jobs)
            completed = len(jobtracker.completed_jobs)
            snapshot["backlog"] = BacklogRecord(
                horizon=float(spec.horizon),
                jobs_offered=len(ordered),
                jobs_admitted=admitted,
                jobs_completed=completed,
                jobs_unfinished=admitted - completed,
                jobs_not_admitted=len(ordered) - admitted,
                tasks_completed=len(jobtracker.reports),
                maps_pending=sum(
                    job.pending_map_count for job in jobtracker.active_jobs
                ),
                reduces_pending=sum(
                    job.pending_reduce_count for job in jobtracker.active_jobs
                ),
            )

    jobtracker.all_done_event.add_callback(on_all_done)
    if sampler is not None:
        # Close the sampled series at the same instant, so the trace ends on
        # a snapshot of the completed workload (in event order — trailing
        # heartbeats may still tick afterwards).
        jobtracker.all_done_event.add_callback(lambda _e: sampler.sample(sim.now))
    if sink is not None:
        # Same closing rule for the columnar series: its last sample is the
        # completed-workload instant, not a later periodic tick.
        jobtracker.all_done_event.add_callback(lambda _e: sink.sample(sim.now))

    sim.run(until=spec.max_sim_time)
    if "makespan" not in snapshot:
        raise RuntimeError(
            f"scenario did not complete within {spec.max_sim_time} simulated seconds "
            f"({len(jobtracker.completed_jobs)}/{len(ordered)} jobs done)"
        )

    # Killed attempts exist without faults too (speculative duplicates),
    # so the waste accounting runs unconditionally.
    reexecuted, wasted_joules, _ = wasted_energy_breakdown(jobtracker, cluster)

    energy_by_type: Dict[str, float] = snapshot["energy_by_type"]  # type: ignore[assignment]
    metrics = RunMetrics(
        scheduler_name=policy.name,
        seed=spec.seed,
        makespan=float(snapshot["makespan"]),  # type: ignore[arg-type]
        total_energy_joules=sum(energy_by_type.values()),
        energy_by_type=energy_by_type,
        idle_energy_joules=float(snapshot["idle"]),  # type: ignore[arg-type]
        dynamic_energy_joules=float(snapshot["dynamic"]),  # type: ignore[arg-type]
        utilization_by_type=snapshot["utilization_by_type"],  # type: ignore[assignment]
        job_results=build_job_results(jobtracker, cluster, config),
        collector=collector,
        reexecuted_tasks=reexecuted,
        wasted_energy_joules=wasted_joules,
    )
    if tracer is not None and trace_path is not None:
        write_jsonl(tracer, trace_path)
    return ScenarioResult(
        metrics=metrics,
        scheduler=policy,
        jobtracker=jobtracker,
        cluster=cluster,
        meter=meter,
        tracer=tracer,
        registry=registry,
        injector=injector,
        telemetry=sink,
        profiler=profiler,
        backlog=snapshot.get("backlog"),  # type: ignore[arg-type]
    )
