"""Portable run results: everything the figure harnesses consume, picklable.

A :class:`~repro.runner.engine.ScenarioResult` holds the *live* simulation
object graph (simulator, cluster, jobtracker) — great for interactive
inspection, impossible to pickle across a ``multiprocessing`` boundary or
store in a cache.  :class:`RunRecord` is its portable projection: the
:class:`~repro.metrics.RunMetrics` (with a detached collector), the fleet
composition, optional meter readings, the E-Ant convergence summary, and
per-job phase breakdowns.  :func:`build_record` derives one from a
finished result.

Serial execution, parallel workers, and cache restoration all hand back
the same ``RunRecord`` content for the same spec — the bit-identity
guarantee the sweep runner is built on.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING, Dict, Optional, Tuple

from ..core import EAntScheduler
from ..energy.meter import MeterReading
from ..faults import FaultRecovery
from ..metrics import RunMetrics
from ..observability.profiler import ProfileRecord
from ..observability.telemetry import TelemetryRecord

if TYPE_CHECKING:  # pragma: no cover
    from .engine import ScenarioResult
    from .spec import ScenarioSpec

__all__ = [
    "RunRecord",
    "MeterRecord",
    "ConvergenceRecord",
    "BacklogRecord",
    "build_record",
    "record_digest",
]


def _digestable(value: Any, precision: Optional[int] = None) -> Any:
    """Project ``value`` onto plain JSON data with *exact* float identity.

    Finite floats are rendered with ``float.hex()`` — a bijection on the
    representable doubles — so two records digest equal **iff** every
    number in them is bit-identical.  This is the equality contract the
    differential suite and the golden corpus enforce; ``==`` on floats
    would already do, but a hex digest survives serialization to disk.

    With ``precision`` set, floats are instead rendered in scientific
    notation with that many digits after the point — a *float-tolerance*
    projection where two records digest equal iff every number agrees to
    ``precision + 1`` significant digits.  This is the tier the
    large-fleet differential scenarios use: vectorized reductions over
    thousands of machines are only contractually bit-exact for the
    operations the 16-node corpus pins down, so scale parity is checked
    at tolerance rather than by bit identity.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if precision is None:
            return value.hex()
        # %.*e canonicalizes -0.0/0.0 apart but folds last-ulp noise;
        # nan/inf format to their names, which is fine for a digest.
        return f"{value:.{precision}e}"
    if isinstance(value, enum.Enum):
        return _digestable(value.value, precision)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _digestable(getattr(value, f.name), precision)
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (tuple, list)):
        return [_digestable(item, precision) for item in value]
    if isinstance(value, dict):
        # Sort by the projected key so the digest does not depend on dict
        # insertion order (tuple keys become their repr).
        items = [
            (repr(_digestable(k, precision)), _digestable(v, precision))
            for k, v in value.items()
        ]
        return {key: item for key, item in sorted(items, key=lambda kv: kv[0])}
    # Numpy scalars (and anything else float-like) fold to exact doubles.
    if hasattr(value, "item"):
        return _digestable(value.item(), precision)
    raise TypeError(f"cannot digest {type(value).__name__}: {value!r}")


def record_digest(record: "RunRecord", precision: Optional[int] = None) -> str:
    """SHA-256 over a canonical projection of ``record``.

    With ``precision=None`` (the exact tier) two digests match iff the two
    records are bit-identical in every number, string, and shape (modulo
    dict ordering).  With an integer ``precision`` (the float-tolerance
    tier) floats are rounded to that many scientific-notation digits
    first, so the digest tolerates sub-ulp accumulation differences while
    still pinning structure and every non-float value exactly.
    ``wall_seconds`` is host timing, not simulation outcome, so it is
    excluded either way — as are the ``telemetry`` and ``profile``
    sections, which hold host wall-clock measurements and observational
    time-series whose sample count depends on the sampling interval.
    Dropping them keeps the digest payload byte-identical to records
    produced before telemetry existed, so frozen golden digests survive.
    """
    stripped = record
    if getattr(record, "telemetry", None) is not None or getattr(record, "profile", None) is not None:
        # Null the sections *before* projecting: ndarray columns are not
        # digestable, and they must not be.
        stripped = dataclasses.replace(record, telemetry=None, profile=None)
    data = _digestable(stripped, precision)
    data.pop("wall_seconds", None)
    data.pop("telemetry", None)
    data.pop("profile", None)
    if data.get("backlog") is None:
        # Key absent when empty: closed-loop records keep the digest
        # payload they had before open-loop mode existed.
        data.pop("backlog", None)
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class MeterRecord:
    """Detached wall-power meter readings of one run.

    Exposes the subset of the :class:`~repro.energy.ClusterMeter` API the
    exchange experiment consumes (readings + per-machine idle power for
    idle-floor extrapolation past the final sample).
    """

    readings: Tuple[MeterReading, ...]
    idle_watts_by_machine: Dict[int, float]

    def idle_watts(self, machine_id: int) -> float:
        return self.idle_watts_by_machine[machine_id]


@dataclass(frozen=True)
class ConvergenceRecord:
    """E-Ant colony-convergence summary (Figs. 11(a)-(b)).

    ``converged_times`` holds the per-colony stabilization times of the
    colonies that did converge; ``total_colonies`` counts every colony the
    detector ever saw, so censored (never-stabilized) colonies remain
    visible.
    """

    converged_times: Tuple[float, ...]
    total_colonies: int

    @property
    def converged_colonies(self) -> int:
        return len(self.converged_times)


@dataclass(frozen=True)
class BacklogRecord:
    """Admission/backlog accounting of one open-loop (overload) run.

    Produced only when the spec ran with ``open_loop=True``: the run was
    cut at ``horizon`` simulated seconds, and these counters say how much
    of the offered workload was admitted, finished, or still queued at
    the cut.  Part of the digest payload — overload outcomes are
    simulation results, not observations.
    """

    #: The open-loop cutoff (simulated seconds) the run was stopped at.
    horizon: float
    #: Jobs in the spec's workload (arrivals offered to the system).
    jobs_offered: int
    #: Jobs whose arrival fell before the horizon and entered the tracker.
    jobs_admitted: int
    #: Admitted jobs that finished before the horizon.
    jobs_completed: int
    #: Admitted jobs still unfinished at the horizon (the job backlog).
    jobs_unfinished: int
    #: Offered jobs whose arrival fell at/after the horizon (never admitted).
    jobs_not_admitted: int
    #: Map/reduce tasks that completed before the horizon.
    tasks_completed: int
    #: Map tasks still pending (queued, unlaunched) at the horizon.
    maps_pending: int
    #: Reduce tasks still pending at the horizon.
    reduces_pending: int

    @property
    def offered_rate_per_s(self) -> float:
        """Mean arrival rate the workload offered over the horizon."""
        return self.jobs_offered / self.horizon if self.horizon > 0 else 0.0

    @property
    def completion_rate_per_s(self) -> float:
        """Mean job drain rate the system achieved over the horizon."""
        return self.jobs_completed / self.horizon if self.horizon > 0 else 0.0

    @property
    def saturated(self) -> bool:
        """True when jobs arrived faster than they drained (backlog grew)."""
        return self.jobs_unfinished > 0


@dataclass(frozen=True)
class RunRecord:
    """The portable outcome of executing one :class:`ScenarioSpec`."""

    spec_hash: str
    metrics: RunMetrics
    #: machine model -> number of machines in the fleet
    machines_by_model: Dict[str, int]
    meter: Optional[MeterRecord] = None
    convergence: Optional[ConvergenceRecord] = None
    #: job name -> {"map": s, "shuffle": s, "reduce": s} wall-clock seconds
    phase_breakdown_by_job: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Per-disruptive-fault recovery summaries (empty on fault-free runs)
    faults: Tuple[FaultRecovery, ...] = ()
    #: Columnar fleet time-series (runs executed with ``telemetry=``);
    #: excluded from digests — observational, interval-dependent shape
    telemetry: Optional[TelemetryRecord] = None
    #: Kernel phase-profile (host wall-clock); excluded from digests
    profile: Optional[ProfileRecord] = None
    #: Open-loop backlog/admission accounting (None on closed-loop runs;
    #: dropped from the digest payload when absent so pre-existing golden
    #: digests survive)
    backlog: Optional[BacklogRecord] = None
    #: seconds of wall-clock time the producing run took (0.0 on restore
    #: from cache the field keeps the *original* run's cost)
    wall_seconds: float = 0.0


def build_record(spec: "ScenarioSpec", result: "ScenarioResult", wall_seconds: float = 0.0) -> RunRecord:
    """Project a finished :class:`ScenarioResult` into a :class:`RunRecord`."""
    cluster = result.cluster
    machines_by_model: Dict[str, int] = {}
    for machine in cluster:
        model = machine.spec.model
        machines_by_model[model] = machines_by_model.get(model, 0) + 1

    meter: Optional[MeterRecord] = None
    if result.meter is not None:
        meter = MeterRecord(
            readings=tuple(result.meter.readings),
            idle_watts_by_machine={
                machine.machine_id: machine.spec.power.idle_watts for machine in cluster
            },
        )

    convergence: Optional[ConvergenceRecord] = None
    if isinstance(result.scheduler, EAntScheduler):
        detector = result.scheduler.convergence
        times = [
            detector.convergence_time(colony) for colony in detector.converged_at
        ]
        convergence = ConvergenceRecord(
            converged_times=tuple(t for t in times if t is not None),
            total_colonies=len(detector.first_seen),
        )

    breakdowns: Dict[str, Dict[str, float]] = {}
    for job in result.jobtracker.completed_jobs:
        breakdowns[job.name] = job.phase_breakdown()

    recoveries: Tuple[FaultRecovery, ...] = ()
    if result.injector is not None:
        recoveries = tuple(result.injector.recovery_summary())

    telemetry: Optional[TelemetryRecord] = None
    if result.telemetry is not None:
        telemetry = result.telemetry.record()
    profile: Optional[ProfileRecord] = None
    if result.profiler is not None:
        profile = result.profiler.record()

    return RunRecord(
        spec_hash=spec.spec_hash(),
        metrics=result.metrics.portable(),
        machines_by_model=machines_by_model,
        meter=meter,
        convergence=convergence,
        phase_breakdown_by_job=breakdowns,
        faults=recoveries,
        telemetry=telemetry,
        profile=profile,
        backlog=result.backlog,
        wall_seconds=wall_seconds,
    )
