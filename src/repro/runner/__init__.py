"""Declarative scenario execution: specs, records, caching, parallel sweeps.

The pieces (see ``docs/api.md`` for the full guide):

* :class:`ScenarioSpec` — frozen, hashable, picklable description of one
  run; canonical-JSON serialization and a stable SHA-256 content hash.
* :func:`execute_spec` / :class:`ScenarioResult` — the execution engine
  (live simulation objects; what ``run_scenario`` wraps).
* :class:`RunRecord` — the portable projection of a finished run
  (detached metrics, meter readings, convergence summary) that crosses
  process boundaries and lives in the cache.
* :class:`ResultCache` — content-addressed on-disk cache keyed by spec
  hash plus a code-version salt.
* :class:`SweepRunner` — parallel fan-out with per-task retry/timeout,
  graceful serial degradation, and cache-first resolution.
"""

from .cache import CacheStats, ResultCache, code_version_salt, default_cache_dir
from .engine import SCHEDULER_NAMES, ScenarioResult, execute_spec, make_scheduler
from .record import (
    BacklogRecord,
    ConvergenceRecord,
    MeterRecord,
    RunRecord,
    build_record,
    record_digest,
)
from .spec import SPEC_VERSION, ScenarioSpec, canonical_json
from .sweep import SweepError, SweepReport, SweepRunner, resolve_specs

__all__ = [
    "ScenarioSpec",
    "SPEC_VERSION",
    "canonical_json",
    "ScenarioResult",
    "execute_spec",
    "make_scheduler",
    "SCHEDULER_NAMES",
    "RunRecord",
    "BacklogRecord",
    "MeterRecord",
    "ConvergenceRecord",
    "build_record",
    "record_digest",
    "ResultCache",
    "CacheStats",
    "code_version_salt",
    "default_cache_dir",
    "SweepError",
    "SweepReport",
    "SweepRunner",
    "resolve_specs",
]
