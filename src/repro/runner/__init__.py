"""Declarative scenario execution: specs, records, caching, parallel sweeps.

The pieces (see ``docs/api.md`` for the full guide):

* :class:`ScenarioSpec` — frozen, hashable, picklable description of one
  run; canonical-JSON serialization and a stable SHA-256 content hash.
* :func:`execute_spec` / :class:`ScenarioResult` — the execution engine
  (live simulation objects; what ``run_scenario`` wraps).
* :class:`RunRecord` — the portable projection of a finished run
  (detached metrics, meter readings, convergence summary) that crosses
  process boundaries and lives in the cache.
* :class:`ResultCache` — content-addressed on-disk cache keyed by spec
  hash plus a code-version salt.
* :class:`SweepRunner` — parallel fan-out with per-task retry/timeout,
  graceful serial degradation, and cache-first resolution.
* :class:`ShardManifest` / :func:`shard_specs` — content-addressed
  partitioning of a spec grid across machines (see ``docs/sweeps.md``).
* :class:`ResultSpool` / :class:`SweepAggregate` / :func:`merge_spools` —
  streaming JSONL result spooling with incremental aggregation, SIGKILL
  resume, and deterministic shard merging.
"""

from .cache import (
    CacheEntry,
    CacheStats,
    GcReport,
    ResultCache,
    code_version_salt,
    default_cache_dir,
)
from .engine import SCHEDULER_NAMES, ScenarioResult, execute_spec, make_scheduler
from .record import (
    BacklogRecord,
    ConvergenceRecord,
    MeterRecord,
    RunRecord,
    build_record,
    record_digest,
)
from .shard import ShardError, ShardManifest, grid_digest, load_manifest, shard_specs
from .spec import SPEC_VERSION, ScenarioSpec, canonical_json
from .spool import (
    ResultSpool,
    SpoolLineError,
    SweepAggregate,
    aggregate_digest,
    digest_listing,
    merge_spools,
)
from .sweep import SweepError, SweepReport, SweepRunner, resolve_specs

__all__ = [
    "ScenarioSpec",
    "SPEC_VERSION",
    "canonical_json",
    "ScenarioResult",
    "execute_spec",
    "make_scheduler",
    "SCHEDULER_NAMES",
    "RunRecord",
    "BacklogRecord",
    "MeterRecord",
    "ConvergenceRecord",
    "build_record",
    "record_digest",
    "ResultCache",
    "CacheStats",
    "CacheEntry",
    "GcReport",
    "code_version_salt",
    "default_cache_dir",
    "SweepError",
    "SweepReport",
    "SweepRunner",
    "resolve_specs",
    "ShardManifest",
    "ShardError",
    "shard_specs",
    "grid_digest",
    "load_manifest",
    "ResultSpool",
    "SpoolLineError",
    "SweepAggregate",
    "aggregate_digest",
    "digest_listing",
    "merge_spools",
]
