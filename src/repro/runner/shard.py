"""Content-addressed shard manifests: split one spec grid across machines.

A 10k-scenario parameter study does not fit one multiprocessing pool on
one machine.  :func:`shard_specs` partitions a grid into ``shard_count``
disjoint shards by **spec hash**, so the split is a pure function of the
grid's *content*:

* specs are deduplicated by :meth:`~repro.runner.spec.ScenarioSpec.spec_hash`
  and sorted by hash — the enumeration order of the grid is irrelevant;
* shard ``i`` takes every ``shard_count``-th hash starting at ``i``
  (round-robin over the sorted hashes), so shard sizes differ by at most
  one and the shards partition the spec set exactly (no overlap, no loss);
* the **grid digest** — SHA-256 over the sorted spec-hash set — names the
  whole study.  Two manifests with the same grid digest, shard count, and
  shard index describe byte-for-byte the same work, whoever expanded the
  grid and wherever it runs.

A :class:`ShardManifest` is the portable JSON form of one shard: grid
digest, shard coordinates, and the member spec hashes.  It is what the
merge step (:func:`~repro.runner.spool.merge_spools` via ``repro
sweep-merge --check-manifest``) verifies coverage against before
declaring a sharded study complete.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from .spec import ScenarioSpec

__all__ = [
    "ShardManifest",
    "ShardError",
    "grid_digest",
    "shard_specs",
    "load_manifest",
]

#: Bumped if the manifest schema changes shape.
MANIFEST_VERSION = 1


class ShardError(ValueError):
    """A manifest failed validation (bad coordinates, corrupt file)."""


def grid_digest(spec_hashes: Sequence[str]) -> str:
    """SHA-256 of the sorted spec-hash *set* — the study's identity.

    Duplicates collapse and order is discarded, so any enumeration of the
    same grid produces the same digest.
    """
    payload = "\n".join(sorted(set(spec_hashes)))
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def _check_coordinates(shard_count: int, shard_index: int) -> None:
    if shard_count < 1:
        raise ShardError(f"shard_count must be >= 1 (got {shard_count})")
    if not (0 <= shard_index < shard_count):
        raise ShardError(
            f"shard_index must be in [0, {shard_count}) (got {shard_index})"
        )


@dataclass(frozen=True)
class ShardManifest:
    """One shard of a content-addressed spec grid, in portable form."""

    #: SHA-256 over the full grid's sorted spec-hash set (all shards).
    grid_digest: str
    shard_count: int
    shard_index: int
    #: This shard's member spec hashes, sorted.
    spec_hashes: Tuple[str, ...]
    #: Size of the full (deduplicated) grid, for coverage accounting.
    grid_size: int

    def __post_init__(self) -> None:
        _check_coordinates(self.shard_count, self.shard_index)
        object.__setattr__(self, "spec_hashes", tuple(sorted(self.spec_hashes)))

    @property
    def short_digest(self) -> str:
        return self.grid_digest[:12]

    @property
    def display(self) -> str:
        return (
            f"shard {self.shard_index + 1}/{self.shard_count} of grid "
            f"{self.short_digest}: {len(self.spec_hashes)}/{self.grid_size} specs"
        )

    # ------------------------------------------------------------- JSON form
    def to_json_dict(self) -> Dict[str, object]:
        return {
            "manifest_version": MANIFEST_VERSION,
            "grid_digest": self.grid_digest,
            "shard_count": self.shard_count,
            "shard_index": self.shard_index,
            "grid_size": self.grid_size,
            "spec_hashes": list(self.spec_hashes),
        }

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_json_dict(), sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "ShardManifest":
        try:
            version = data["manifest_version"]
            if version != MANIFEST_VERSION:
                raise ShardError(
                    f"unsupported manifest_version {version} "
                    f"(expected {MANIFEST_VERSION})"
                )
            manifest = cls(
                grid_digest=str(data["grid_digest"]),
                shard_count=int(data["shard_count"]),  # type: ignore[arg-type]
                shard_index=int(data["shard_index"]),  # type: ignore[arg-type]
                spec_hashes=tuple(str(h) for h in data["spec_hashes"]),  # type: ignore[union-attr]
                grid_size=int(data["grid_size"]),  # type: ignore[arg-type]
            )
        except ShardError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise ShardError(f"malformed shard manifest: {error}") from None
        return manifest


def load_manifest(path: Union[str, Path]) -> ShardManifest:
    """Read a manifest written by :meth:`ShardManifest.write`."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise ShardError(f"cannot read manifest {path}: {error}") from None
    except ValueError as error:
        raise ShardError(f"{path}: not valid JSON: {error}") from None
    if not isinstance(data, dict):
        raise ShardError(f"{path}: manifest must be a JSON object")
    return ShardManifest.from_json_dict(data)


def shard_specs(
    specs: Sequence[ScenarioSpec],
    shard_count: int,
    shard_index: int,
) -> Tuple[ShardManifest, List[ScenarioSpec]]:
    """Deterministically select shard ``shard_index`` of ``shard_count``.

    Returns the manifest plus the member specs **in spec-hash order** —
    the canonical execution order for sharded runs, so two machines
    expanding the same grid walk their shards identically.  Duplicate
    specs (same hash) collapse to one; the grid is a *set*.
    """
    _check_coordinates(shard_count, shard_index)
    by_hash: Dict[str, ScenarioSpec] = {}
    for spec in specs:
        by_hash.setdefault(spec.spec_hash(), spec)
    ordered = sorted(by_hash)
    digest = grid_digest(ordered)
    member_hashes = ordered[shard_index::shard_count]
    manifest = ShardManifest(
        grid_digest=digest,
        shard_count=shard_count,
        shard_index=shard_index,
        spec_hashes=tuple(member_hashes),
        grid_size=len(ordered),
    )
    return manifest, [by_hash[h] for h in member_hashes]
