"""Streaming JSONL result spooling: crash-safe sweeps with O(1) memory.

A :class:`ResultSpool` is an append-only JSONL file the sweep runner
flushes each :class:`~repro.runner.record.RunRecord` into *as it
completes*, so a 10k-scenario sweep holds at most a pool-chunk of records
in memory and a SIGKILL at any byte loses at most the work in flight.
Each line is self-validating::

    {"v": 1, "spec": "<spec-hash>", "digest": "<record-digest>",
     "sha": "<sha256(payload)[:16]>", "payload": "<base64(pickle(record))>"}

* ``sha`` detects truncated or bit-flipped payloads without unpickling;
* ``digest`` is :func:`~repro.runner.record.record_digest` of the record,
  recomputed after unpickling, so a line that decodes but does not match
  its own digest is treated as damage, never as a result;
* damaged or unparsable lines are **skipped with a warning and their
  specs re-run** — in the trace loader's ``file:line:`` diagnostic
  convention — so a crash mid-write degrades to a little redundant work,
  never to silent loss;
* duplicate spec hashes keep the first valid occurrence (later ones are
  redundant re-runs of the same deterministic spec).

:class:`SweepAggregate` is the incremental roll-up updated per flushed
record; its :meth:`~SweepAggregate.digest` — SHA-256 over the sorted
``(spec_hash, record_digest)`` pairs — is the identity of a *result set*,
which is how a resumed-after-SIGKILL sweep is proven bit-identical to an
uninterrupted one.  :func:`merge_spools` reassembles shard spools into
one sorted spool deterministically: any merge order yields the same
output file and the same aggregate digest.

Crash-test hook
---------------
Setting ``EANT_REPRO_SPOOL_KILL_AFTER=K`` makes the ``K``-th append
``SIGKILL`` the process right after flushing (``K:torn`` kills midway
through writing the line, leaving a truncated final line on disk).  The
resilience suite uses this to park a real sweep at exact crash points;
production runs never set it.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import signal
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from .record import RunRecord, record_digest

__all__ = [
    "ResultSpool",
    "SpoolLineError",
    "SweepAggregate",
    "merge_spools",
    "aggregate_digest",
    "digest_listing",
]

#: Bumped if the line schema changes shape.
SPOOL_VERSION = 1

#: Crash-test hook (see module docstring).
KILL_AFTER_ENV = "EANT_REPRO_SPOOL_KILL_AFTER"

WarnFn = Callable[[str], None]


class SpoolLineError(ValueError):
    """One spool line failed validation (the reason is the message)."""


def encode_line(spec_hash: str, record: RunRecord) -> str:
    """Render one record as a self-validating spool line (no newline)."""
    payload = base64.b64encode(
        pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")
    return json.dumps(
        {
            "v": SPOOL_VERSION,
            "spec": spec_hash,
            "digest": record_digest(record),
            "sha": hashlib.sha256(payload.encode("ascii")).hexdigest()[:16],
            "payload": payload,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def decode_line(text: str) -> Tuple[str, str, RunRecord]:
    """Parse and *verify* one spool line -> ``(spec_hash, digest, record)``.

    Raises :class:`SpoolLineError` on any damage: bad JSON, missing keys,
    wrong version, checksum mismatch, unpicklable payload, wrong type, or
    a record that does not reproduce its claimed digest.
    """
    try:
        data = json.loads(text)
    except ValueError as error:
        raise SpoolLineError(f"not valid JSON ({error})") from None
    if not isinstance(data, dict):
        raise SpoolLineError("line is not a JSON object")
    try:
        version = data["v"]
        spec_hash = data["spec"]
        digest = data["digest"]
        sha = data["sha"]
        payload = data["payload"]
    except KeyError as error:
        raise SpoolLineError(f"missing key {error}") from None
    if version != SPOOL_VERSION:
        raise SpoolLineError(f"unsupported spool version {version!r}")
    if not all(isinstance(v, str) for v in (spec_hash, digest, sha, payload)):
        raise SpoolLineError("spec/digest/sha/payload must be strings")
    if hashlib.sha256(payload.encode("ascii")).hexdigest()[:16] != sha:
        raise SpoolLineError("payload checksum mismatch")
    try:
        record = pickle.loads(base64.b64decode(payload.encode("ascii")))
    except Exception as error:
        raise SpoolLineError(f"payload does not unpickle ({error})") from None
    if not isinstance(record, RunRecord):
        raise SpoolLineError(
            f"payload is {type(record).__name__}, not RunRecord"
        )
    if record.spec_hash != spec_hash:
        raise SpoolLineError(
            f"record belongs to spec {record.spec_hash[:12]}, line claims "
            f"{str(spec_hash)[:12]}"
        )
    if record_digest(record) != digest:
        raise SpoolLineError("record does not reproduce its claimed digest")
    return spec_hash, digest, record


def _parse_kill_after(raw: Optional[str]) -> Tuple[Optional[int], bool]:
    """``"K"`` -> (K, False); ``"K:torn"`` -> (K, True); unset -> (None, _)."""
    if not raw:
        return None, False
    count, _, mode = raw.partition(":")
    return int(count), mode == "torn"


class ResultSpool:
    """Append-only JSONL spool of finished run records.

    Appends flush eagerly so that a process killed with SIGKILL leaves at
    most one truncated final line — which :meth:`scan` skips with a
    warning and the runner re-executes.  The file is created lazily on
    the first append; a missing file scans as empty.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = None
        self._appended = 0
        self._kill_after, self._kill_torn = _parse_kill_after(
            os.environ.get(KILL_AFTER_ENV)
        )

    # --------------------------------------------------------------- writing
    def append(self, record: RunRecord) -> None:
        """Write one record and flush it to the OS before returning."""
        line = encode_line(record.spec_hash, record)
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
            # A SIGKILL mid-write leaves an unterminated final line; if we
            # appended straight after it, our first record would glue onto
            # the fragment and both would be lost.  Seal the fragment into
            # its own (invalid, warned, redone) line instead.
            if self._handle.tell() > 0:
                with open(self.path, "rb") as probe:
                    probe.seek(-1, os.SEEK_END)
                    if probe.read(1) != b"\n":
                        self._handle.write("\n")
        if (
            self._kill_after is not None
            and self._kill_torn
            and self._appended + 1 == self._kill_after
        ):  # pragma: no cover - exercised via subprocess rig
            self._handle.write(line[: max(1, len(line) // 2)])
            self._handle.flush()
            os.kill(os.getpid(), signal.SIGKILL)
        self._handle.write(line + "\n")
        self._handle.flush()
        self._appended += 1
        if self._appended == self._kill_after:  # pragma: no cover - subprocess rig
            os.kill(os.getpid(), signal.SIGKILL)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultSpool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- reading
    def scan(
        self, warn: Optional[WarnFn] = None
    ) -> Iterator[Tuple[str, str, RunRecord]]:
        """Yield every *valid, first-occurrence* ``(hash, digest, record)``.

        Damaged lines and duplicate spec hashes are skipped; each skip
        emits one ``path:line: warning: ...`` diagnostic through ``warn``.
        A missing spool file yields nothing (a fresh sweep).
        """
        if not self.path.exists():
            return
        seen: Dict[str, str] = {}
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, raw in enumerate(handle, start=1):
                text = raw.rstrip("\n")
                if not text.strip():
                    continue
                try:
                    spec_hash, digest, record = decode_line(text)
                except SpoolLineError as error:
                    if warn is not None:
                        warn(
                            f"{self.path}:{lineno}: warning: {error}; "
                            f"the spec will be re-run"
                        )
                    continue
                if spec_hash in seen:
                    if warn is not None:
                        extra = (
                            ""
                            if seen[spec_hash] == digest
                            else " with a different digest"
                        )
                        warn(
                            f"{self.path}:{lineno}: warning: duplicate entry "
                            f"for spec {spec_hash[:12]}{extra}; keeping the "
                            f"first occurrence"
                        )
                    continue
                seen[spec_hash] = digest
                yield spec_hash, digest, record

    def completed(self, warn: Optional[WarnFn] = None) -> Dict[str, str]:
        """``{spec_hash: record_digest}`` of every valid spooled result."""
        return {h: d for h, d, _ in self.scan(warn)}


# ---------------------------------------------------------------- aggregate
def aggregate_digest(entries: Dict[str, str]) -> str:
    """SHA-256 identity of a result *set*: sorted (spec, digest) pairs.

    Execution order, shard layout, resume history, and merge order all
    vanish — two sweeps of the same grid match iff every per-spec record
    digest matches.
    """
    payload = "\n".join(f"{h} {d}" for h, d in sorted(entries.items()))
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


@dataclass
class SweepAggregate:
    """Incremental roll-up of spooled records: O(1) memory in grid size.

    Holds two small strings per spec (the identity pairs) plus scalar
    totals — never the records themselves.
    """

    #: spec_hash -> record_digest of every folded record
    entries: Dict[str, str] = field(default_factory=dict)
    records: int = 0
    total_energy_kj: float = 0.0
    max_makespan: float = 0.0
    jobs_completed: int = 0
    total_run_seconds: float = 0.0

    def add(self, record: RunRecord) -> None:
        self.entries[record.spec_hash] = record_digest(record)
        self.records += 1
        metrics = record.metrics
        self.total_energy_kj += metrics.total_energy_kj
        self.max_makespan = max(self.max_makespan, metrics.makespan)
        self.jobs_completed += len(metrics.job_results)
        self.total_run_seconds += record.wall_seconds

    def digest(self) -> str:
        return aggregate_digest(self.entries)

    def summary(self) -> str:
        return (
            f"aggregate {self.digest()[:12]}: {self.records} records, "
            f"{self.jobs_completed} jobs, {self.total_energy_kj:.0f} kJ total, "
            f"max makespan {self.max_makespan / 60:.1f} min"
        )


# -------------------------------------------------------------------- merge
def merge_spools(
    spools: Sequence[Union[str, Path, ResultSpool]],
    out: Optional[Union[str, Path]] = None,
    warn: Optional[WarnFn] = None,
) -> Dict[str, str]:
    """Reassemble shard spools into one result set, deterministically.

    Returns the merged ``{spec_hash: record_digest}`` mapping and, when
    ``out`` is given, writes a merged spool whose lines are re-encoded in
    spec-hash order — so merging the same shards in *any* order produces
    the same mapping and the same output file.  Conflicting duplicates
    (same spec hash, different record digest — impossible for one code
    version, possible across versions) resolve to the lexicographically
    smaller digest, with a warning, so even pathological inputs merge
    deterministically.
    """
    opened = [s if isinstance(s, ResultSpool) else ResultSpool(s) for s in spools]
    chosen: Dict[str, Tuple[str, RunRecord]] = {}
    for spool in opened:
        for spec_hash, digest, record in spool.scan(warn):
            if spec_hash not in chosen:
                chosen[spec_hash] = (digest, record)
                continue
            have, _ = chosen[spec_hash]
            if have == digest:
                continue
            if warn is not None:
                warn(
                    f"{spool.path}: warning: conflicting digests for spec "
                    f"{spec_hash[:12]} ({have[:12]} vs {digest[:12]}); "
                    f"keeping the smaller"
                )
            if digest < have:
                chosen[spec_hash] = (digest, record)
    entries = {h: d for h, (d, _) in chosen.items()}
    if out is not None:
        import dataclasses

        out_path = Path(out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        with open(out_path, "w", encoding="utf-8") as handle:
            for spec_hash in sorted(chosen):
                # Normalize the digest-excluded fields (host timing and
                # observational sections) so the merged bytes are a pure
                # function of the result *content* — a spool assembled
                # from a killed-and-resumed run merges byte-identical to
                # one from an uninterrupted run.
                record = dataclasses.replace(
                    chosen[spec_hash][1],
                    wall_seconds=0.0,
                    telemetry=None,
                    profile=None,
                )
                handle.write(encode_line(spec_hash, record) + "\n")
    return entries


def digest_listing(entries: Dict[str, str]) -> List[str]:
    """``"<spec_hash> <record_digest>"`` lines, sorted — the diffable form."""
    return [f"{h} {d}" for h, d in sorted(entries.items())]
