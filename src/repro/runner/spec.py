"""Declarative scenario descriptions: frozen, hashable, picklable.

A :class:`ScenarioSpec` captures *everything that determines the outcome*
of one simulation run — workload, scheduler name (plus E-Ant tuning),
fleet, Hadoop config, noise model, seed, and metering options — as one
frozen dataclass.  Because every nested piece is itself a frozen
dataclass of plain numbers and strings, a spec:

* is hashable and picklable (it travels across ``multiprocessing``
  worker boundaries untouched),
* serializes to *canonical JSON* (sorted keys, no whitespace), and
* therefore has a stable content hash — :meth:`ScenarioSpec.spec_hash` —
  that is identical across processes, machines, and dict orderings, and
  changes whenever any outcome-affecting field changes.

The content hash keys the result cache (:mod:`repro.runner.cache`).
The ``label`` field is presentation metadata and deliberately excluded
from the identity.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from ..cluster import MachineSpec, PowerModel, paper_fleet
from ..core import EAntConfig, ExchangeLevel
from ..faults import FaultPlan
from ..hadoop import HadoopConfig
from ..noise import DEFAULT_NOISE, NoiseModel
from ..workloads import JobSpec, TraceRef, TraceSpec, WorkloadProfile
from .engine import SCHEDULER_NAMES

__all__ = ["ScenarioSpec", "SPEC_VERSION", "canonical_json"]

#: Bumped whenever the spec schema itself changes shape, so hashes from
#: incompatible schema generations can never collide.
SPEC_VERSION = 1

Fleet = Tuple[Tuple[MachineSpec, int], ...]


def _jsonable(value: Any) -> Any:
    """Recursively convert a spec field into canonical-JSON-ready data."""
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


def canonical_json(data: Any) -> str:
    """Canonical JSON: sorted keys, minimal separators, no NaN laundering."""
    return json.dumps(_jsonable(data), sort_keys=True, separators=(",", ":"))


# --------------------------------------------------------------- from-JSON
def _profile_from_dict(data: Dict[str, Any]) -> WorkloadProfile:
    return WorkloadProfile(**data)


def _job_from_dict(data: Dict[str, Any]) -> JobSpec:
    data = dict(data)
    data["profile"] = _profile_from_dict(data["profile"])
    return JobSpec(**data)


def _machine_from_dict(data: Dict[str, Any]) -> MachineSpec:
    data = dict(data)
    data["power"] = PowerModel(**data["power"])
    return MachineSpec(**data)


def _eant_from_dict(data: Dict[str, Any]) -> EAntConfig:
    data = dict(data)
    data["exchange"] = ExchangeLevel(data["exchange"])
    return EAntConfig(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative, content-addressable simulation run.

    Parameters
    ----------
    jobs:
        The workload (tuple of :class:`~repro.workloads.JobSpec`; lists
        are coerced).
    scheduler:
        Scheduler name from :data:`~repro.runner.engine.SCHEDULER_NAMES`.
    fleet:
        ``(spec, count)`` pairs; ``None`` normalizes to the paper's
        16-slave fleet so the default and the explicit paper fleet share
        one identity.
    hadoop:
        Framework config; ``None`` normalizes to :class:`HadoopConfig()`.
    noise:
        Noise model; ``None`` normalizes to :data:`DEFAULT_NOISE`.
    seed:
        Master RNG seed (common random numbers across schedulers).
    eant_config:
        E-Ant tuning (only consulted when ``scheduler == "e-ant"``).
    with_meter, meter_interval:
        Attach the periodic wall-power meter; its readings ride along in
        the :class:`~repro.runner.record.RunRecord`.
    max_sim_time:
        Hard cap guarding against non-terminating configurations.
    trace:
        :class:`~repro.workloads.TraceRef` (name + content digest) of the
        trace the ``jobs`` were materialized from, or ``None`` for
        synthetic workloads.  Folded into the identity so trace-driven
        runs cache and sweep like synthetic ones; trace-free specs keep
        their pre-existing hashes.
    open_loop:
        Run in open-loop overload mode: the scenario ends at ``horizon``
        simulated seconds whether or not the workload drained, and the
        run reports backlog/admission accounting instead of requiring
        every job to finish.
    horizon:
        Open-loop cutoff in simulated seconds (required iff
        ``open_loop``); must stay below ``max_sim_time``.
    label:
        Presentation-only tag (excluded from identity and hashing).
    """

    jobs: Tuple[JobSpec, ...]
    scheduler: str = "fair"
    fleet: Optional[Fleet] = None
    hadoop: Optional[HadoopConfig] = None
    noise: Optional[NoiseModel] = None
    seed: int = 0
    eant_config: Optional[EAntConfig] = None
    with_meter: bool = False
    meter_interval: float = 30.0
    max_sim_time: float = 10_000_000.0
    faults: Optional[FaultPlan] = None
    trace: Optional[TraceRef] = None
    open_loop: bool = False
    horizon: Optional[float] = None
    label: Optional[str] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ValueError("scenario needs at least one job")
        object.__setattr__(self, "jobs", tuple(self.jobs))
        fleet = self.fleet if self.fleet is not None else paper_fleet()
        object.__setattr__(
            self, "fleet", tuple((spec, int(count)) for spec, count in fleet)
        )
        if self.hadoop is None:
            object.__setattr__(self, "hadoop", HadoopConfig())
        if self.noise is None:
            object.__setattr__(self, "noise", DEFAULT_NOISE)
        key = self.scheduler.strip().lower()
        if key == "eant":
            key = "e-ant"
        object.__setattr__(self, "scheduler", key)
        if key not in SCHEDULER_NAMES:
            raise ValueError(f"unknown scheduler {self.scheduler!r}; known: {SCHEDULER_NAMES}")
        if self.meter_interval <= 0:
            raise ValueError("meter_interval must be positive")
        if self.max_sim_time <= 0:
            raise ValueError("max_sim_time must be positive")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ValueError("faults must be a FaultPlan (or None)")
        if self.faults is not None and not self.faults.events:
            # An empty plan is the same run as no plan; normalize so both
            # spellings share one identity (and one cache entry).
            object.__setattr__(self, "faults", None)
        if self.trace is not None and not isinstance(self.trace, TraceRef):
            raise ValueError("trace must be a TraceRef (or None)")
        if self.open_loop:
            if self.horizon is None:
                raise ValueError("open_loop scenarios require a horizon")
            object.__setattr__(self, "horizon", float(self.horizon))
            if not self.horizon > 0:
                raise ValueError(f"horizon must be positive, got {self.horizon}")
            if self.horizon >= self.max_sim_time:
                raise ValueError(
                    f"horizon ({self.horizon}) must be below max_sim_time "
                    f"({self.max_sim_time})"
                )
        elif self.horizon is not None:
            raise ValueError("horizon is only meaningful with open_loop=True")

    # ------------------------------------------------------------- identity
    def to_json_dict(self) -> Dict[str, Any]:
        """The identity-bearing fields as plain JSON-ready data."""
        out = {
            "spec_version": SPEC_VERSION,
            "jobs": _jsonable(self.jobs),
            "scheduler": self.scheduler,
            "fleet": _jsonable(self.fleet),
            "hadoop": _jsonable(self.hadoop),
            "noise": _jsonable(self.noise),
            "seed": self.seed,
            "eant_config": _jsonable(self.eant_config),
            "with_meter": self.with_meter,
            "meter_interval": self.meter_interval,
            "max_sim_time": self.max_sim_time,
        }
        # Written only when present: a fault-free spec keeps the canonical
        # JSON (hence hash) it had before fault plans existed.
        if self.faults is not None:
            out["faults"] = self.faults.to_json_dict()
        # Same rule for the trace frontend: synthetic closed-loop specs
        # keep the canonical JSON they had before traces existed.
        if self.trace is not None:
            out["trace"] = {"name": self.trace.name, "digest": self.trace.digest}
        if self.open_loop:
            out["open_loop"] = True
            out["horizon"] = self.horizon
        return out

    def canonical_json(self) -> str:
        """Canonical (sorted-key, compact) JSON of the identity fields."""
        return canonical_json(self.to_json_dict())

    def spec_hash(self) -> str:
        """SHA-256 of the canonical JSON — the cache key material."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    @property
    def short_hash(self) -> str:
        """First 12 hex digits of :meth:`spec_hash` (display/tree layout)."""
        return self.spec_hash()[:12]

    @property
    def display_label(self) -> str:
        """The label if set, else ``scheduler@seed/hash`` shorthand."""
        if self.label:
            return self.label
        return f"{self.scheduler}@seed{self.seed}/{self.short_hash[:8]}"

    @classmethod
    def from_json_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_json_dict` output (round-trip)."""
        version = data.get("spec_version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(f"unsupported spec_version {version} (expected {SPEC_VERSION})")
        return cls(
            jobs=tuple(_job_from_dict(job) for job in data["jobs"]),
            scheduler=data["scheduler"],
            fleet=tuple(
                (_machine_from_dict(machine), count) for machine, count in data["fleet"]
            ),
            hadoop=HadoopConfig(**data["hadoop"]),
            noise=NoiseModel(**data["noise"]),
            seed=data["seed"],
            eant_config=(
                _eant_from_dict(data["eant_config"])
                if data.get("eant_config") is not None
                else None
            ),
            with_meter=data["with_meter"],
            meter_interval=data["meter_interval"],
            max_sim_time=data["max_sim_time"],
            faults=(
                FaultPlan.from_json_dict(data["faults"])
                if data.get("faults") is not None
                else None
            ),
            trace=(
                TraceRef(**data["trace"]) if data.get("trace") is not None else None
            ),
            open_loop=data.get("open_loop", False),
            horizon=data.get("horizon"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_json_dict(json.loads(text))

    @classmethod
    def from_trace(cls, trace: TraceSpec, **fields: Any) -> "ScenarioSpec":
        """Build a trace-driven spec: jobs materialized, identity folded.

        The trace's rows become the ``jobs`` tuple and its
        :class:`~repro.workloads.TraceRef` (name + content digest) is
        embedded in the identity, so two specs built from content-equal
        traces — whatever file or format they came from — share one hash
        and one cache entry.  All other :class:`ScenarioSpec` fields pass
        through ``fields``.
        """
        if not isinstance(trace, TraceSpec):
            raise TypeError(f"expected a TraceSpec, got {type(trace).__name__}")
        if "jobs" in fields:
            raise ValueError("from_trace derives jobs from the trace")
        return cls(jobs=trace.to_job_specs(), trace=trace.ref(), **fields)

    # ------------------------------------------------------------ execution
    def run(self, **runtime: Any):
        """Execute this spec in-process and return the full
        :class:`~repro.runner.engine.ScenarioResult` (live simulator
        objects included).  ``runtime`` kwargs are forwarded to
        :func:`~repro.runner.engine.execute_spec` (``trace=...`` etc.)."""
        from .engine import execute_spec

        return execute_spec(self, **runtime)

    def run_record(self, **runtime: Any):
        """Execute this spec and return the portable
        :class:`~repro.runner.record.RunRecord` (picklable; what workers
        ship back and the cache stores)."""
        from .record import build_record

        return build_record(self, self.run(**runtime))

    # ------------------------------------------------------------- variants
    def with_overrides(self, **changes: Any) -> "ScenarioSpec":
        """A copy with some fields replaced (grid-expansion helper)."""
        return dataclasses.replace(self, **changes)
