"""Content-addressed result cache for scenario runs.

Results are keyed by ``(code-version salt, spec hash)``:

* the **spec hash** is the SHA-256 of the spec's canonical JSON
  (:meth:`~repro.runner.spec.ScenarioSpec.spec_hash`), so any change to
  any outcome-affecting input produces a different key, and
* the **code-version salt** is the SHA-256 of every ``*.py`` source file
  in the :mod:`repro` package, so editing the simulator invalidates every
  cached result without any manual version bookkeeping.

Layout (one directory per salt, fanned out by the first hash byte)::

    <cache-dir>/
      v1-<salt12>/
        ab/
          <spec-hash>.pkl        # pickled RunRecord
          <spec-hash>.spec.json  # the spec's canonical JSON (debugging)

The default cache directory is ``$EANT_REPRO_CACHE_DIR``, else
``$XDG_CACHE_HOME/eant-repro``, else ``~/.cache/eant-repro``.
Corrupt or unreadable entries are treated as misses and removed.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional

from .record import RunRecord

if TYPE_CHECKING:  # pragma: no cover
    from .spec import ScenarioSpec

__all__ = [
    "ResultCache",
    "CacheStats",
    "CacheEntry",
    "GcReport",
    "code_version_salt",
    "default_cache_dir",
]

#: Environment override for the salt (useful to pin caches across
#: deliberately-compatible code edits, or to segregate CI runs).
SALT_ENV = "EANT_REPRO_CODE_SALT"
CACHE_DIR_ENV = "EANT_REPRO_CACHE_DIR"

_salt_cache: Optional[str] = None


def code_version_salt() -> str:
    """Hash of the installed ``repro`` package's Python sources.

    Computed once per process; the :data:`SALT_ENV` environment variable
    overrides it verbatim.
    """
    global _salt_cache
    override = os.environ.get(SALT_ENV)
    if override:
        return override
    if _salt_cache is None:
        import repro

        digest = hashlib.sha256()
        package_root = Path(repro.__file__).resolve().parent
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _salt_cache = digest.hexdigest()
    return _salt_cache


def default_cache_dir() -> Path:
    """Resolve the cache root (env override > XDG > ``~/.cache``)."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "eant-repro"


@dataclass
class CacheStats:
    """Hit/miss/store counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0


@dataclass(frozen=True)
class CacheEntry:
    """One stored record's on-disk metadata (GC inventory unit)."""

    path: Path
    spec_hash: str
    #: Generation directory name (``v1-<salt12>``); entries from stale
    #: code generations compete under the same age/size bounds.
    generation: str
    mtime: float
    size_bytes: int


@dataclass
class GcReport:
    """Accounting of one :meth:`ResultCache.gc` pass.

    A ``dry_run`` report lists exactly what the equivalent real pass
    would remove — the test suite holds the two to byte equality.
    """

    dry_run: bool = False
    scanned: int = 0
    kept: int = 0
    removed: int = 0
    total_bytes: int = 0
    freed_bytes: int = 0
    #: Spec hashes of the removed entries, sorted.
    removed_hashes: List[str] = field(default_factory=list)

    def summary(self) -> str:
        verb = "would remove" if self.dry_run else "removed"
        return (
            f"cache gc: scanned {self.scanned} entries "
            f"({self.total_bytes / 1e6:.1f} MB); {verb} {self.removed} "
            f"({self.freed_bytes / 1e6:.1f} MB), kept {self.kept}"
        )


@dataclass
class ResultCache:
    """Filesystem cache of :class:`~repro.runner.record.RunRecord` objects.

    Parameters
    ----------
    directory:
        Cache root; defaults to :func:`default_cache_dir`.
    salt:
        Code-version salt; defaults to :func:`code_version_salt`.
    """

    directory: Optional[Path] = None
    salt: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.directory is None:
            self.directory = default_cache_dir()
        self.directory = Path(self.directory)
        if self.salt is None:
            self.salt = code_version_salt()

    # -------------------------------------------------------------- layout
    @property
    def generation_dir(self) -> Path:
        """The directory holding this code generation's entries."""
        return self.directory / f"v1-{self.salt[:12]}"

    def path_for(self, spec: "ScenarioSpec") -> Path:
        digest = spec.spec_hash()
        return self.generation_dir / digest[:2] / f"{digest}.pkl"

    # ----------------------------------------------------------- get / put
    def get(self, spec: "ScenarioSpec") -> Optional[RunRecord]:
        """The cached record for ``spec``, or ``None`` on a miss.

        A corrupt entry (truncated pickle, wrong type) counts as a miss
        and is evicted so the slot heals on the next store.
        """
        path = self.path_for(spec)
        if not path.exists():
            self.stats.misses += 1
            return None
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
            if not isinstance(record, RunRecord):
                raise TypeError(f"cache entry is {type(record).__name__}, not RunRecord")
        except Exception:
            self.stats.misses += 1
            self.stats.evictions += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        # Touch the entry so GC's age/LRU ordering reflects *use*, not
        # just creation: a spec re-read every sweep stays warm.
        try:
            os.utime(path, None)
        except OSError:  # pragma: no cover - racing eviction
            pass
        return record

    def put(self, spec: "ScenarioSpec", record: RunRecord) -> Path:
        """Store ``record`` under ``spec``'s content address (atomically)."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so concurrent sweep workers never observe a
        # half-written pickle.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(record, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        sidecar = path.with_suffix("").with_suffix(".spec.json")
        sidecar.write_text(spec.canonical_json() + "\n", encoding="utf-8")
        self.stats.stores += 1
        return path

    # ------------------------------------------------------------------- GC
    def entries(self) -> Iterator["CacheEntry"]:
        """Every stored record across *all* code generations, cheapest
        metadata only (no unpickling)."""
        if not self.directory.exists():
            return
        for gen_dir in sorted(self.directory.glob("v1-*")):
            if not gen_dir.is_dir():
                continue
            for path in sorted(gen_dir.rglob("*.pkl")):
                try:
                    stat = path.stat()
                except OSError:  # racing deletion
                    continue
                yield CacheEntry(
                    path=path,
                    spec_hash=path.stem,
                    generation=gen_dir.name,
                    mtime=stat.st_mtime,
                    size_bytes=stat.st_size,
                )

    def gc(
        self,
        max_age_seconds: Optional[float] = None,
        max_size_bytes: Optional[int] = None,
        keep: Iterable[str] = (),
        dry_run: bool = False,
        now: Optional[float] = None,
    ) -> "GcReport":
        """Age- and size-bounded compaction across every generation.

        * Entries older than ``max_age_seconds`` (by mtime, which
          :meth:`get` refreshes on every hit — LRU, not FIFO) are evicted.
        * If the surviving set still exceeds ``max_size_bytes``, the
          oldest entries are evicted until it fits.
        * Spec hashes in ``keep`` (e.g. a live shard manifest's members)
          are **never** evicted, by either bound.
        * ``dry_run=True`` reports exactly what a real pass would delete,
          deleting nothing — the report is the contract: a dry run
          followed by a real run removes precisely the listed hashes.

        Both bounds ``None`` means nothing is evicted (the report still
        inventories the cache).  Returns a :class:`GcReport`.
        """
        keep_set = frozenset(keep)
        now = time.time() if now is None else now
        entries = list(self.entries())
        report = GcReport(
            dry_run=dry_run,
            scanned=len(entries),
            total_bytes=sum(e.size_bytes for e in entries),
        )

        doomed: List[CacheEntry] = []
        survivors: List[CacheEntry] = []
        for entry in entries:
            if entry.spec_hash in keep_set:
                survivors.append(entry)
            elif (
                max_age_seconds is not None
                and now - entry.mtime > max_age_seconds
            ):
                doomed.append(entry)
            else:
                survivors.append(entry)

        if max_size_bytes is not None:
            # Oldest-first (mtime, then path for a total order) until the
            # surviving set fits the budget; kept hashes are immovable.
            remaining = sum(e.size_bytes for e in survivors)
            for entry in sorted(survivors, key=lambda e: (e.mtime, str(e.path))):
                if remaining <= max_size_bytes:
                    break
                if entry.spec_hash in keep_set:
                    continue
                doomed.append(entry)
                remaining -= entry.size_bytes

        for entry in doomed:
            report.removed += 1
            report.freed_bytes += entry.size_bytes
            report.removed_hashes.append(entry.spec_hash)
            if dry_run:
                continue
            sidecar = entry.path.with_suffix("").with_suffix(".spec.json")
            for victim in (entry.path, sidecar):
                try:
                    victim.unlink()
                except OSError:
                    pass
            self.stats.evictions += 1
            # Prune now-empty fan-out and generation directories.
            for parent in (entry.path.parent, entry.path.parent.parent):
                try:
                    parent.rmdir()
                except OSError:
                    break
        report.kept = report.scanned - report.removed
        report.removed_hashes.sort()
        return report

    def clear_generation(self) -> int:
        """Delete every entry of the current code generation; returns the
        number of records removed."""
        removed = 0
        root = self.generation_dir
        if not root.exists():
            return 0
        for path in sorted(root.rglob("*"), reverse=True):
            if path.is_file():
                if path.suffix == ".pkl":
                    removed += 1
                path.unlink()
            else:
                try:
                    path.rmdir()
                except OSError:
                    pass
        try:
            root.rmdir()
        except OSError:
            pass
        return removed
